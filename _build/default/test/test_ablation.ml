(* E6 ablation: replacing stable vector with a naive "first n-f inputs"
   round 0. Safety (validity, agreement, termination) survives — the
   averaging phase never relied on stable vector — but the containment
   property is gone, so the I_Z optimality certificate can fail. *)

module Q = Numeric.Q
module Config = Chc.Config
module Executor = Chc.Executor
module Crash = Runtime.Crash
module Scheduler = Runtime.Scheduler

let cfg = Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one

(* A crash plan that bites mid-broadcast in round 0 of the naive
   variant: the faulty process reaches only a strict prefix of
   recipients with its input. *)
let partial_crash n =
  let crash = Array.make n Crash.Never in
  crash.(0) <- Crash.After_sends 2;
  crash

let run ~round0 ~seed =
  let spec = Executor.default_spec ~config:cfg ~seed ~round0 () in
  Executor.run { spec with Executor.crash = partial_crash 5 }

let test_naive_still_safe () =
  let r = run ~round0:`Naive ~seed:61 in
  Alcotest.(check bool) "termination" true r.Executor.terminated;
  Alcotest.(check bool) "validity" true r.Executor.valid;
  Alcotest.(check bool) "agreement" true r.Executor.agreement_ok

let test_stable_vector_always_optimal_on_same_schedules () =
  (* Any seed: the stable-vector variant must keep the I_Z certificate
     even under mid-broadcast crashes. *)
  for seed = 0 to 15 do
    let r = run ~round0:`Stable_vector ~seed in
    if not (r.Executor.terminated && r.Executor.valid && r.Executor.optimal)
    then Alcotest.failf "stable-vector run degraded at seed %d" seed
  done

let test_naive_loses_optimality_somewhere () =
  (* The ablation's point: across a modest seed sweep there exists a
     schedule where the naive variant's views diverge enough that the
     I_Z certificate fails (either I_Z ⊄ h_i or the witness itself
     degenerates). If this never fired the ablation would be vacuous. *)
  let violations = ref 0 in
  for seed = 0 to 30 do
    let r = run ~round0:`Naive ~seed in
    if not r.Executor.optimal then incr violations
  done;
  Alcotest.(check bool)
    (Printf.sprintf "optimality violations observed (%d/31)" !violations)
    true (!violations > 0)

let prop_naive_safety =
  Gen.prop ~count:20 "naive variant keeps Theorem-2 safety"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000))
    (fun seed ->
       let r = run ~round0:`Naive ~seed in
       r.Executor.terminated && r.Executor.valid && r.Executor.agreement_ok)

let suite =
  [ ( "ablation",
      [ Alcotest.test_case "naive variant safety" `Quick test_naive_still_safe;
        Alcotest.test_case "stable vector keeps optimality" `Quick
          test_stable_vector_always_optimal_on_same_schedules;
        Alcotest.test_case "naive variant loses optimality" `Quick
          test_naive_loses_optimality_somewhere ]
      @ List.map Gen.qtest [ prop_naive_safety ] ) ]
