module Q = Numeric.Q
module Vec = Geometry.Vec
module H = Geometry.Hull2d
module Lp = Geometry.Lp

let v x y = Vec.of_ints [x; y]
let qt = Alcotest.testable Q.pp Q.equal

let test_hull_square_with_interior () =
  let h = H.hull [v 0 0; v 2 0; v 2 2; v 0 2; v 1 1; v 0 1; v 1 0] in
  Alcotest.(check int) "vertices" 4 (List.length h);
  Alcotest.(check bool) "canonical" true (H.is_canonical h);
  Alcotest.check qt "area2" (Q.of_int 8) (H.area2 h)

let test_hull_degenerate () =
  Alcotest.(check int) "point" 1 (List.length (H.hull [v 5 5; v 5 5; v 5 5]));
  let seg = H.hull [v 0 0; v 3 3; v 1 1; v 2 2] in
  Alcotest.(check int) "collinear -> segment" 2 (List.length seg);
  Alcotest.(check bool) "extremes kept" true
    (List.exists (Vec.equal (v 0 0)) seg && List.exists (Vec.equal (v 3 3)) seg);
  Alcotest.(check int) "empty" 0 (List.length (H.hull []))

let test_contains () =
  let h = H.hull [v 0 0; v 4 0; v 0 4] in
  Alcotest.(check bool) "interior" true (H.contains h (v 1 1));
  Alcotest.(check bool) "boundary edge" true (H.contains h (v 2 2));
  Alcotest.(check bool) "vertex" true (H.contains h (v 0 4));
  Alcotest.(check bool) "outside" false (H.contains h (v 3 3));
  Alcotest.(check bool) "segment member" true
    (H.contains [v 0 0; v 2 2] (v 1 1));
  Alcotest.(check bool) "segment non-member" false
    (H.contains [v 0 0; v 2 2] (v 1 2))

let test_clip () =
  let square = H.hull [v 0 0; v 2 0; v 2 2; v 0 2] in
  let c = H.clip square ~normal:(v 1 1) ~offset:Q.two in
  (* Cut the square by x + y <= 2: a triangle of area 2. *)
  Alcotest.check qt "clipped area" (Q.of_int 4) (H.area2 c);
  let gone = H.clip square ~normal:(v 1 0) ~offset:Q.minus_one in
  Alcotest.(check int) "clipped away" 0 (List.length gone);
  let touch = H.clip square ~normal:(v 1 0) ~offset:Q.zero in
  Alcotest.(check int) "touching edge survives" 2 (List.length touch)

let test_minkowski_known () =
  let square = H.hull [v 0 0; v 1 0; v 1 1; v 0 1] in
  let tri = H.hull [v 0 0; v 1 0; v 0 1] in
  let s = H.minkowski_sum square tri in
  Alcotest.(check int) "pentagon" 5 (List.length s);
  Alcotest.check qt "area2 = 2*(1 + 1/2 + boundary strip)"
    (H.area2 (H.hull (List.concat_map (fun a -> List.map (Vec.add a) (H.hull [v 0 0; v 1 0; v 0 1])) square)))
    (H.area2 s)

(* --- properties ------------------------------------------------------ *)

let arb = Gen.arb_points ~min_size:1 ~max_size:10 2
let arb_pair = QCheck.pair arb arb

let props =
  [ Gen.prop "hull contains all inputs" arb
      (fun pts ->
         let h = H.hull pts in
         List.for_all (H.contains h) pts);
    Gen.prop "hull is canonical" arb
      (fun pts -> H.is_canonical (H.hull pts));
    Gen.prop "hull idempotent" arb
      (fun pts ->
         let h = H.hull pts in
         List.length (H.hull h) = List.length h
         && List.for_all2 Vec.equal (H.hull h) h);
    Gen.prop "hull membership agrees with LP" (QCheck.pair arb (Gen.arb_vec 2))
      (fun (pts, p) -> H.contains (H.hull pts) p = Lp.in_convex_hull pts p);
    Gen.prop "clip is sound" (QCheck.pair arb (Gen.arb_vec 2))
      (fun (pts, n) ->
         if Vec.equal n (Vec.zero 2) then QCheck.assume_fail ()
         else begin
           let h = H.hull pts in
           let offset = Q.one in
           let c = H.clip h ~normal:n ~offset in
           List.for_all
             (fun x -> Q.leq (Vec.dot n x) offset && H.contains h x)
             c
         end);
    Gen.prop "clip keeps satisfying vertices" (QCheck.pair arb (Gen.arb_vec 2))
      (fun (pts, n) ->
         if Vec.equal n (Vec.zero 2) then QCheck.assume_fail ()
         else begin
           let h = H.hull pts in
           let offset = Q.one in
           let c = H.clip h ~normal:n ~offset in
           List.for_all
             (fun x ->
                if Q.leq (Vec.dot n x) offset then H.contains c x else true)
             h
         end);
    Gen.prop "intersection is commutative and sound" arb_pair
      (fun (p1, p2) ->
         let h1 = H.hull p1 and h2 = H.hull p2 in
         let i12 = H.intersect h1 h2 and i21 = H.intersect h2 h1 in
         List.length i12 = List.length i21
         && List.for_all2 Vec.equal i12 i21
         && List.for_all (fun x -> H.contains h1 x && H.contains h2 x) i12);
    Gen.prop "intersection contains common points"
      (QCheck.pair arb_pair (Gen.arb_vec 2))
      (fun ((p1, p2), x) ->
         let h1 = H.hull p1 and h2 = H.hull p2 in
         if H.contains h1 x && H.contains h2 x then
           H.contains (H.intersect h1 h2) x
         else true);
    Gen.prop "minkowski support additivity"
      (QCheck.pair arb_pair (Gen.arb_vec 2))
      (fun ((p1, p2), dir) ->
         let h1 = H.hull p1 and h2 = H.hull p2 in
         let s = H.minkowski_sum h1 h2 in
         let support h =
           List.fold_left (fun acc x -> Q.max acc (Vec.dot dir x))
             (Vec.dot dir (List.hd h)) h
         in
         (match h1, h2 with
          | [], _ | _, [] -> s = []
          | _ -> Q.equal (support s) (Q.add (support h1) (support h2))));
    Gen.prop "minkowski edge-merge agrees with pairwise sums" arb_pair
      (fun (p1, p2) ->
         let h1 = H.hull p1 and h2 = H.hull p2 in
         match h1, h2 with
         | [], _ | _, [] -> true
         | _ ->
           let fast = H.minkowski_sum h1 h2 in
           let slow =
             H.hull (List.concat_map (fun a -> List.map (Vec.add a) h2) h1)
           in
           List.length fast = List.length slow
           && List.for_all2 Vec.equal fast slow);
    Gen.prop "halfplanes describe the polytope"
      (QCheck.pair arb (Gen.arb_vec 2))
      (fun (pts, x) ->
         let h = H.hull pts in
         match h with
         | [] -> true
         | _ ->
           let hp = H.halfplanes h in
           let inside_h = H.contains h x in
           let inside_hp =
             List.for_all (fun (n, c) -> Q.leq (Vec.dot n x) c) hp
           in
           inside_h = inside_hp);
    Gen.prop "area non-negative and zero iff degenerate" arb
      (fun pts ->
         let h = H.hull pts in
         let a = H.area2 h in
         Q.sign a >= 0 && (Q.is_zero a = (List.length h <= 2)));
  ]

let suite =
  [ ( "hull2d",
      [ Alcotest.test_case "square with interior" `Quick test_hull_square_with_interior;
        Alcotest.test_case "degenerate hulls" `Quick test_hull_degenerate;
        Alcotest.test_case "contains" `Quick test_contains;
        Alcotest.test_case "clip" `Quick test_clip;
        Alcotest.test_case "minkowski known" `Quick test_minkowski_known ]
      @ List.map Gen.qtest props ) ]
