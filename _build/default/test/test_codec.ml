(* Wire-format round trips and hostile-input behaviour. *)

module Q = Numeric.Q
module B = Numeric.Bigint
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module Wire = Codec.Wire

let test_varint_roundtrip () =
  List.iter
    (fun n ->
       let buf = Buffer.create 8 in
       Wire.write_varint buf n;
       let r = Wire.reader_of_string (Buffer.contents buf) in
       Alcotest.(check int) (string_of_int n) n (Wire.read_varint r);
       Alcotest.(check bool) "consumed" true (Wire.reader_done r))
    [0; 1; 127; 128; 300; 1 lsl 20; 1 lsl 40; max_int]

let test_int_zigzag () =
  List.iter
    (fun n ->
       let buf = Buffer.create 8 in
       Wire.write_int buf n;
       let r = Wire.reader_of_string (Buffer.contents buf) in
       Alcotest.(check int) (string_of_int n) n (Wire.read_int r))
    [0; -1; 1; -64; 64; -100000; 123456789; -(1 lsl 40)]

let test_polytope_roundtrip () =
  let p =
    Polytope.of_points ~dim:2
      [ Vec.of_ints [0; 0]; Vec.of_ints [3; 0]; Vec.of_ints [0; 3];
        Vec.make [Q.of_ints 22 7; Q.of_ints (-5) 3] ]
  in
  let p' = Wire.polytope_of_string (Wire.polytope_to_string p) in
  Alcotest.(check bool) "equal" true (Polytope.equal p p')

let test_size_monotone () =
  (* More vertices, more bytes; the E5 bandwidth argument. *)
  let point = Polytope.singleton (Vec.of_ints [1; 2]) in
  let square =
    Polytope.of_points ~dim:2
      [Vec.of_ints [0;0]; Vec.of_ints [9;0]; Vec.of_ints [9;9]; Vec.of_ints [0;9]]
  in
  Alcotest.(check bool) "point cheaper than square" true
    (Wire.polytope_size point < Wire.polytope_size square)

let test_malformed () =
  let raises s =
    try ignore (Wire.polytope_of_string s); false with
    | Wire.Malformed _ -> true
  in
  Alcotest.(check bool) "empty" true (raises "");
  Alcotest.(check bool) "truncated" true
    (let good = Wire.polytope_to_string (Polytope.singleton (Vec.of_ints [1; 2])) in
     raises (String.sub good 0 (String.length good - 1)));
  Alcotest.(check bool) "trailing garbage" true
    (let good = Wire.polytope_to_string (Polytope.singleton (Vec.of_ints [1; 2])) in
     raises (good ^ "x"))

let test_recanonicalization () =
  (* A peer sending redundant interior vertices cannot smuggle a
     non-canonical V-representation into the process state. *)
  let buf = Buffer.create 64 in
  Wire.write_varint buf 2; (* dim *)
  Wire.write_varint buf 5; (* vertex count, one interior *)
  List.iter (Wire.write_vec buf)
    [ Vec.of_ints [0;0]; Vec.of_ints [2;0]; Vec.of_ints [1;1] (* interior *);
      Vec.of_ints [2;2]; Vec.of_ints [0;2] ];
  let p = Wire.polytope_of_string (Buffer.contents buf) in
  Alcotest.(check int) "canonicalized to 4 vertices" 4
    (List.length (Polytope.vertices p))

let gen_q_big =
  let open QCheck.Gen in
  let* n = -1000000000 -- 1000000000 in
  let* d = 1 -- 1000000000 in
  return (Q.of_ints n d)

let prop_q_roundtrip =
  Gen.prop ~count:300 "rational round trip"
    (QCheck.make ~print:Q.to_string gen_q_big)
    (fun q ->
       let buf = Buffer.create 16 in
       Wire.write_q buf q;
       let r = Wire.reader_of_string (Buffer.contents buf) in
       Q.equal q (Wire.read_q r) && Wire.reader_done r)

let prop_bigint_roundtrip =
  Gen.prop ~count:200 "bigint round trip (large)"
    (QCheck.make ~print:B.to_string
       (QCheck.Gen.map
          (fun (a, b) -> B.mul (B.pow (B.of_int a) 7) (B.of_int b))
          QCheck.Gen.(pair (1 -- 1000000) (-1000000 -- 1000000))))
    (fun x ->
       let buf = Buffer.create 16 in
       Wire.write_bigint buf x;
       let r = Wire.reader_of_string (Buffer.contents buf) in
       B.equal x (Wire.read_bigint r))

let prop_polytope_roundtrip =
  Gen.prop ~count:100 "polytope round trip"
    (QCheck.make ~print:Gen.print_points
       (Gen.gen_points ~min_size:1 ~max_size:8 2))
    (fun pts ->
       let p = Polytope.of_points ~dim:2 pts in
       Polytope.equal p (Wire.polytope_of_string (Wire.polytope_to_string p)))

let suite =
  [ ( "codec",
      [ Alcotest.test_case "varint" `Quick test_varint_roundtrip;
        Alcotest.test_case "zig-zag ints" `Quick test_int_zigzag;
        Alcotest.test_case "polytope round trip" `Quick test_polytope_roundtrip;
        Alcotest.test_case "size monotone" `Quick test_size_monotone;
        Alcotest.test_case "malformed input" `Quick test_malformed;
        Alcotest.test_case "re-canonicalization" `Quick test_recanonicalization ]
      @ List.map Gen.qtest
          [ prop_q_roundtrip; prop_bigint_roundtrip; prop_polytope_roundtrip ] ) ]
