module Q = Numeric.Q
module Config = Chc.Config
module Bounds = Chc.Bounds

let cfg ~n ~f ~d ~eps =
  Config.make ~n ~f ~d ~eps ~lo:Q.zero ~hi:Q.one

let test_tightness () =
  (* t_end is the smallest positive t with (1-1/n)^t·sqrt(Ω²) < ε:
     check the inequality at t_end and its failure at t_end - 1. *)
  List.iter
    (fun (n, f, d, eps) ->
       let c = cfg ~n ~f ~d ~eps in
       let t = Bounds.t_end c in
       Alcotest.(check bool) "t_end >= 1" true (t >= 1);
       let ratio2 = Q.square (Q.of_ints (n - 1) n) in
       let lhs2 at = Q.mul (Q.pow ratio2 at) (Bounds.omega2_bound c) in
       let eps2 = Q.square eps in
       Alcotest.(check bool) "satisfied at t_end" true (Q.lt (lhs2 t) eps2);
       if t > 1 then
         Alcotest.(check bool) "violated at t_end - 1" false
           (Q.lt (lhs2 (t - 1)) eps2))
    [ (5, 1, 2, Q.of_ints 1 10);
      (9, 2, 2, Q.of_ints 1 100);
      (4, 1, 1, Q.of_ints 1 2);
      (13, 3, 2, Q.of_ints 1 7);
      (6, 1, 3, Q.one) ]

let test_monotonic_in_eps () =
  let t_at eps = Bounds.t_end (cfg ~n:5 ~f:1 ~d:2 ~eps) in
  Alcotest.(check bool) "smaller eps, more rounds" true
    (t_at (Q.of_ints 1 1000) > t_at (Q.of_ints 1 10));
  Alcotest.(check bool) "order preserved" true
    (t_at (Q.of_ints 1 100) >= t_at (Q.of_ints 1 10))

let test_omega_bound () =
  let c = cfg ~n:5 ~f:1 ~d:2 ~eps:Q.one in
  (* d·n²·max(U²,μ²) = 2·25·1 = 50 *)
  Alcotest.(check bool) "omega²" true
    (Q.equal (Bounds.omega2_bound c) (Q.of_int 50))

let test_config_validation () =
  Alcotest.check_raises "resilience bound"
    (Invalid_argument "Config.make: resilience requires n >= (d+2)f + 1")
    (fun () -> ignore (cfg ~n:4 ~f:1 ~d:2 ~eps:Q.one));
  Alcotest.check_raises "eps > 0"
    (Invalid_argument "Config.make: eps must be positive")
    (fun () -> ignore (cfg ~n:5 ~f:1 ~d:2 ~eps:Q.zero));
  (* n = (d+2)f + 1 exactly is allowed. *)
  ignore (cfg ~n:6 ~f:1 ~d:3 ~eps:Q.one);
  ignore (cfg ~n:5 ~f:1 ~d:2 ~eps:Q.one)

let test_contraction () =
  let c = cfg ~n:5 ~f:1 ~d:2 ~eps:Q.one in
  Alcotest.(check (float 1e-12)) "t=0" 1.0 (Bounds.contraction_at c 0);
  Alcotest.(check (float 1e-12)) "t=1" 0.8 (Bounds.contraction_at c 1);
  Alcotest.(check (float 1e-12)) "t=2" 0.64 (Bounds.contraction_at c 2)

let suite =
  [ ( "bounds",
      [ Alcotest.test_case "t_end tightness" `Quick test_tightness;
        Alcotest.test_case "monotone in eps" `Quick test_monotonic_in_eps;
        Alcotest.test_case "omega bound" `Quick test_omega_bound;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "contraction" `Quick test_contraction ] ) ]
