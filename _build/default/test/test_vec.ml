module Q = Numeric.Q
module Vec = Geometry.Vec

let qt = Alcotest.testable Q.pp Q.equal
let vt = Alcotest.testable Vec.pp Vec.equal

let test_basics () =
  let a = Vec.of_ints [1; 2] and b = Vec.of_ints [3; -1] in
  Alcotest.check vt "add" (Vec.of_ints [4; 1]) (Vec.add a b);
  Alcotest.check vt "sub" (Vec.of_ints [-2; 3]) (Vec.sub a b);
  Alcotest.check qt "dot" (Q.of_int 1) (Vec.dot a b);
  Alcotest.check qt "norm2" (Q.of_int 5) (Vec.norm2 a);
  Alcotest.check qt "dist2" (Q.of_int 13) (Vec.dist2 a b);
  Alcotest.check vt "scale" (Vec.of_ints [2; 4]) (Vec.scale Q.two a)

let test_lincomb () =
  let a = Vec.of_ints [0; 0] and b = Vec.of_ints [4; 8] in
  Alcotest.check vt "midpoint" (Vec.of_ints [2; 4])
    (Vec.lincomb [(Q.half, a); (Q.half, b)]);
  Alcotest.check vt "average" (Vec.of_ints [2; 4]) (Vec.average [a; b])

let props =
  [ Gen.prop "dot symmetric" (QCheck.pair (Gen.arb_vec 3) (Gen.arb_vec 3))
      (fun (a, b) -> Q.equal (Vec.dot a b) (Vec.dot b a));
    Gen.prop "dot bilinear"
      (QCheck.triple (Gen.arb_vec 3) (Gen.arb_vec 3) (Gen.arb_vec 3))
      (fun (a, b, c) ->
         Q.equal (Vec.dot a (Vec.add b c)) (Q.add (Vec.dot a b) (Vec.dot a c)));
    Gen.prop "norm2 nonneg" (Gen.arb_vec 4)
      (fun a -> Q.sign (Vec.norm2 a) >= 0);
    Gen.prop "dist2 zero iff equal" (QCheck.pair (Gen.arb_vec 2) (Gen.arb_vec 2))
      (fun (a, b) -> Q.is_zero (Vec.dist2 a b) = Vec.equal a b);
    Gen.prop "compare total order"
      (QCheck.triple (Gen.arb_vec 2) (Gen.arb_vec 2) (Gen.arb_vec 2))
      (fun (a, b, c) ->
         let ( <= ) x y = Vec.compare x y <= 0 in
         (a <= b || b <= a)
         && (not (a <= b && b <= c) || a <= c));
    Gen.prop "euclidean triangle inequality"
      (QCheck.triple (Gen.arb_vec 3) (Gen.arb_vec 3) (Gen.arb_vec 3))
      (fun (a, b, c) ->
         Vec.dist a c <= Vec.dist a b +. Vec.dist b c +. 1e-9);
  ]

let suite =
  [ ( "vec",
      [ Alcotest.test_case "basics" `Quick test_basics;
        Alcotest.test_case "lincomb" `Quick test_lincomb ]
      @ List.map Gen.qtest props ) ]
