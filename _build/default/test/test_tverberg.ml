(* Tverberg partitions underpin the paper's Lemma 2 (non-emptiness of
   the round-0 polytope): any (d+1)f + 1 points admit a partition into
   f+1 blocks with intersecting hulls. *)

module Vec = Geometry.Vec
module T = Geometry.Tverberg

let test_known_2d () =
  (* 7 points in the plane, f = 2 -> 3 blocks. *)
  let pts =
    [ Vec.of_ints [0; 0]; Vec.of_ints [4; 0]; Vec.of_ints [0; 4];
      Vec.of_ints [4; 4]; Vec.of_ints [2; 1]; Vec.of_ints [1; 2];
      Vec.of_ints [2; 3] ]
  in
  match T.partition ~dim:2 ~parts:3 pts with
  | Some blocks ->
    Alcotest.(check int) "three blocks" 3 (List.length blocks);
    Alcotest.(check int) "all points used" 7
      (List.length (List.concat blocks));
    Alcotest.(check bool) "hulls intersect" true
      (T.common_point ~dim:2 blocks <> None)
  | None -> Alcotest.fail "no partition found"

let test_collinear () =
  (* Degenerate (collinear) points still satisfy the theorem. *)
  let pts = List.init 7 (fun i -> Vec.of_ints [i; 0]) in
  Alcotest.(check bool) "partition exists" true
    (T.partition ~dim:2 ~parts:3 pts <> None)

let prop_tverberg_guarantee dim f =
  let m = ((dim + 1) * f) + 1 in
  Gen.prop ~count:40
    (Printf.sprintf "tverberg d=%d f=%d" dim f)
    (Gen.arb_int_points ~min_size:m ~max_size:m dim)
    (fun pts -> T.partition ~dim ~parts:(f + 1) pts <> None)

let suite =
  [ ( "tverberg",
      [ Alcotest.test_case "known 2d instance" `Quick test_known_2d;
        Alcotest.test_case "collinear points" `Quick test_collinear ]
      @ List.map Gen.qtest
          [ prop_tverberg_guarantee 1 1;
            prop_tverberg_guarantee 1 2;
            prop_tverberg_guarantee 2 1;
            prop_tverberg_guarantee 2 2 ] ) ]
