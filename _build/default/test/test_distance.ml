module Q = Numeric.Q
module Vec = Geometry.Vec
module D = Geometry.Distance

let v2 x y = Vec.of_ints [x; y]
let v3 x y z = Vec.of_ints [x; y; z]
let qt = Alcotest.testable Q.pp Q.equal

let test_point_segment () =
  Alcotest.check qt "perpendicular foot" (Q.of_int 4)
    (D.dist2_point_segment (v2 1 2) (v2 0 0) (v2 3 0));
  Alcotest.check qt "clamped to endpoint" (Q.of_int 5)
    (D.dist2_point_segment (v2 5 1) (v2 0 0) (v2 3 0));
  Alcotest.check qt "degenerate segment" (Q.of_int 2)
    (D.dist2_point_segment (v2 1 1) (v2 0 0) (v2 0 0))

let test_point_hull_2d () =
  let tri = [v2 0 0; v2 4 0; v2 0 4] in
  Alcotest.check qt "inside is zero" Q.zero
    (D.dist2_point_hull ~dim:2 (v2 1 1) tri);
  Alcotest.check qt "outside hits the hypotenuse" Q.two
    (D.dist2_point_hull ~dim:2 (v2 3 3) tri)

let test_point_hull_1d () =
  let pts = [Vec.of_ints [2]; Vec.of_ints [5]] in
  Alcotest.check qt "left" (Q.of_int 4) (D.dist2_point_hull ~dim:1 (Vec.of_ints [0]) pts);
  Alcotest.check qt "inside" Q.zero (D.dist2_point_hull ~dim:1 (Vec.of_ints [3]) pts);
  Alcotest.check qt "right" Q.one (D.dist2_point_hull ~dim:1 (Vec.of_ints [6]) pts)

let test_point_hull_3d () =
  let tet = [v3 0 0 0; v3 1 0 0; v3 0 1 0; v3 0 0 1] in
  Alcotest.check qt "inside zero" Q.zero
    (D.dist2_point_hull ~dim:3 (Vec.make [Q.of_ints 1 4; Q.of_ints 1 4; Q.of_ints 1 4]) tet);
  (* (1,1,1) projects onto the x+y+z=1 facet: distance² = 4/3. *)
  Alcotest.check qt "outside facet" (Q.of_ints 4 3)
    (D.dist2_point_hull ~dim:3 (v3 1 1 1) tet);
  (* Far along an axis: nearest point is the vertex (1,0,0). *)
  Alcotest.check qt "vertex region" (Q.of_int 4)
    (D.dist2_point_hull ~dim:3 (v3 3 0 0) tet)

let test_hausdorff_known () =
  let sq a b = [v2 a a; v2 b a; v2 b b; v2 a b] in
  Alcotest.check qt "shifted squares" (Q.of_int 8)
    (D.hausdorff2 ~dim:2 (sq 0 2) (sq 2 4));
  Alcotest.check qt "nested squares" (Q.of_int 2)
    (D.hausdorff2 ~dim:2 (sq 0 4) (sq 1 3));
  Alcotest.check qt "identical" Q.zero (D.hausdorff2 ~dim:2 (sq 0 4) (sq 0 4))

(* Embedding 2-d instances into the z = 0 plane of 3-space must not
   change any distance: this cross-checks the generic nd path against
   the specialized planar path. *)
let embed p = Vec.make [p.(0); p.(1); Q.zero]

let prop_embedding_invariance =
  Gen.prop ~count:40 "3d embedding preserves point-hull distance"
    (QCheck.pair (Gen.arb_int_points ~min_size:1 ~max_size:6 2)
       (QCheck.make ~print:Vec.to_string (Gen.gen_int_vec 2)))
    (fun (pts, p) ->
       let d2 = D.dist2_point_hull ~dim:2 p pts in
       let d3 = D.dist2_point_hull ~dim:3 (embed p) (List.map embed pts) in
       Q.equal d2 d3)

let prop_hausdorff_vs_vertex_distances =
  Gen.prop ~count:80 "directed component bounded by vertex distances"
    (QCheck.pair (Gen.arb_points ~min_size:1 ~max_size:6 2)
       (Gen.arb_points ~min_size:1 ~max_size:6 2))
    (fun (p, q) ->
       (* d_H(P,Q)² is at most max over vertex pairs of dist². *)
       let max_pair =
         List.fold_left
           (fun acc a ->
              List.fold_left (fun acc b -> Q.max acc (Vec.dist2 a b)) acc q)
           Q.zero p
       in
       Q.leq (D.hausdorff2 ~dim:2 p q) max_pair)

let prop_hausdorff_translation =
  Gen.prop ~count:80 "translation invariance"
    (QCheck.triple (Gen.arb_points ~min_size:1 ~max_size:6 2)
       (Gen.arb_points ~min_size:1 ~max_size:6 2)
       (Gen.arb_vec 2))
    (fun (p, q, t) ->
       let tr = List.map (Vec.add t) in
       Q.equal (D.hausdorff2 ~dim:2 p q) (D.hausdorff2 ~dim:2 (tr p) (tr q)))

let suite =
  [ ( "distance",
      [ Alcotest.test_case "point-segment" `Quick test_point_segment;
        Alcotest.test_case "point-hull 2d" `Quick test_point_hull_2d;
        Alcotest.test_case "point-hull 1d" `Quick test_point_hull_1d;
        Alcotest.test_case "point-hull 3d" `Quick test_point_hull_3d;
        Alcotest.test_case "hausdorff known" `Quick test_hausdorff_known ]
      @ List.map Gen.qtest
          [ prop_embedding_invariance;
            prop_hausdorff_vs_vertex_distances;
            prop_hausdorff_translation ] ) ]
