module C = Numeric.Combin

let test_subsets_known () =
  Alcotest.(check (list (list int))) "choose 2 of 3"
    [[1; 2]; [1; 3]; [2; 3]]
    (C.subsets_of_size 2 [1; 2; 3]);
  Alcotest.(check (list (list int))) "choose 0" [[]] (C.subsets_of_size 0 [1; 2]);
  Alcotest.(check (list (list int))) "choose too many" []
    (C.subsets_of_size 3 [1; 2]);
  (* Multiset semantics: duplicates yield distinct subsets. *)
  Alcotest.(check int) "multiset" 3 (List.length (C.subsets_of_size 2 [7; 7; 7]))

let test_choose () =
  Alcotest.(check int) "C(5,2)" 10 (C.choose 5 2);
  Alcotest.(check int) "C(10,0)" 1 (C.choose 10 0);
  Alcotest.(check int) "C(10,10)" 1 (C.choose 10 10);
  Alcotest.(check int) "C(4,7)" 0 (C.choose 4 7);
  Alcotest.(check int) "C(50,3)" 19600 (C.choose 50 3)

let test_partitions_known () =
  (* Stirling numbers of the second kind: S(3,2) = 3, S(4,2) = 7. *)
  Alcotest.(check int) "S(3,2)" 3 (List.length (C.partitions_into 2 [1; 2; 3]));
  Alcotest.(check int) "S(4,2)" 7 (List.length (C.partitions_into 2 [1; 2; 3; 4]));
  Alcotest.(check int) "S(4,3)" 6 (List.length (C.partitions_into 3 [1; 2; 3; 4]));
  Alcotest.(check int) "S(n,n)" 1 (List.length (C.partitions_into 3 [1; 2; 3]));
  Alcotest.(check int) "k > n" 0 (List.length (C.partitions_into 4 [1; 2; 3]))

let prop_subset_count =
  Gen.prop ~count:100 "subset count is C(n,k)"
    (QCheck.make
       ~print:(fun (n, k) -> Printf.sprintf "n=%d k=%d" n k)
       QCheck.Gen.(pair (0 -- 9) (0 -- 9)))
    (fun (n, k) ->
       let l = List.init n Fun.id in
       List.length (C.subsets_of_size k l) = C.choose n k)

let prop_subsets_are_subsets =
  Gen.prop ~count:100 "every subset is sorted-in and has the right size"
    (QCheck.make ~print:string_of_int QCheck.Gen.(1 -- 8))
    (fun n ->
       let l = List.init n Fun.id in
       List.for_all
         (fun s ->
            List.length s = 2 && List.for_all (fun x -> List.mem x l) s)
         (C.subsets_of_size 2 l))

let prop_partitions_cover =
  Gen.prop ~count:60 "partitions are disjoint covers"
    (QCheck.make ~print:string_of_int QCheck.Gen.(2 -- 6))
    (fun n ->
       let l = List.init n Fun.id in
       List.for_all
         (fun blocks ->
            let all = List.concat blocks in
            List.length all = n
            && List.sort compare all = l
            && List.for_all (fun b -> b <> []) blocks)
         (C.partitions_into 2 l))

let suite =
  [ ( "combin",
      [ Alcotest.test_case "subsets known" `Quick test_subsets_known;
        Alcotest.test_case "choose" `Quick test_choose;
        Alcotest.test_case "partitions known" `Quick test_partitions_known ]
      @ List.map Gen.qtest
          [ prop_subset_count; prop_subsets_are_subsets; prop_partitions_cover ] ) ]
