(* Shared helpers for the numeric test suites. *)

module B = Numeric.Bigint

(* A rational (num, den) is in normal form: positive denominator and
   coprime parts (den = 1 when num = 0). *)
let normalized num den =
  B.sign den > 0
  && (if B.is_zero num then B.equal den B.one
      else B.equal (B.gcd num den) B.one)
