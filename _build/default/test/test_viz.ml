(* The SVG renderer: structural sanity of the generated document. *)

module Q = Numeric.Q

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let render_one () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  let report = Chc.Executor.run (Chc.Executor.default_spec ~config ~seed:808 ()) in
  (report, Viz.Svg.render ~report)

let test_structure () =
  let report, svg = render_one () in
  Alcotest.(check bool) "svg root" true (contains ~needle:"<svg" svg);
  Alcotest.(check bool) "closes" true (contains ~needle:"</svg>" svg);
  Alcotest.(check bool) "has polygons" true (contains ~needle:"<polygon" svg);
  Alcotest.(check bool) "marks faulty inputs" true
    (report.Chc.Executor.faulty = [] || contains ~needle:"<path" svg);
  Alcotest.(check bool) "legend present" true (contains ~needle:"t_end=" svg)

let test_rejects_non_2d () =
  let config =
    Chc.Config.make ~n:4 ~f:1 ~d:1 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  let report = Chc.Executor.run (Chc.Executor.default_spec ~config ~seed:1 ()) in
  Alcotest.check_raises "d=1 rejected"
    (Invalid_argument "Svg.render: only 2-dimensional executions")
    (fun () -> ignore (Viz.Svg.render ~report))

let test_deterministic () =
  let _, svg1 = render_one () in
  let _, svg2 = render_one () in
  Alcotest.(check bool) "byte-identical" true (svg1 = svg2)

let suite =
  [ ( "viz",
      [ Alcotest.test_case "structure" `Quick test_structure;
        Alcotest.test_case "rejects non-2d" `Quick test_rejects_non_2d;
        Alcotest.test_case "deterministic" `Quick test_deterministic ] ) ]
