module Q = Numeric.Q
module Vec = Geometry.Vec
module Lp = Geometry.Lp

let qt = Alcotest.testable Q.pp Q.equal

let test_maximize_known () =
  (* max x + y  s.t. x + 2y + s1 = 4; 3x + y + s2 = 6; all >= 0.
     Optimum at the intersection x = 8/5, y = 6/5, value 14/5. *)
  let eq =
    [ ([| Q.one; Q.two; Q.one; Q.zero |], Q.of_int 4);
      ([| Q.of_int 3; Q.one; Q.zero; Q.one |], Q.of_int 6) ]
  in
  match Lp.maximize ~objective:[| Q.one; Q.one; Q.zero; Q.zero |] ~eq ~nvars:4 with
  | Lp.Optimal (x, v) ->
    Alcotest.check qt "value" (Q.of_ints 14 5) v;
    Alcotest.check qt "x" (Q.of_ints 8 5) x.(0);
    Alcotest.check qt "y" (Q.of_ints 6 5) x.(1)
  | Lp.Unbounded -> Alcotest.fail "unbounded"
  | Lp.Infeasible -> Alcotest.fail "infeasible"

let test_infeasible () =
  (* x = -1 with x >= 0 is infeasible. *)
  let eq = [ ([| Q.one |], Q.minus_one) ] in
  Alcotest.(check bool) "infeasible" true
    (Lp.maximize ~objective:[| Q.zero |] ~eq ~nvars:1 = Lp.Infeasible)

let test_unbounded () =
  (* max x - y  s.t. x - y = x - y (vacuous: x - y free): encode as
     max x with a single constraint x - y = 0; x can grow forever. *)
  let eq = [ ([| Q.one; Q.minus_one |], Q.zero) ] in
  Alcotest.(check bool) "unbounded" true
    (Lp.maximize ~objective:[| Q.one; Q.zero |] ~eq ~nvars:2 = Lp.Unbounded)

let test_degenerate_redundant () =
  (* Redundant constraints (duplicated rows) must not confuse phase 1. *)
  let eq =
    [ ([| Q.one; Q.one |], Q.one);
      ([| Q.one; Q.one |], Q.one);
      ([| Q.two; Q.two |], Q.two) ]
  in
  match Lp.maximize ~objective:[| Q.one; Q.zero |] ~eq ~nvars:2 with
  | Lp.Optimal (_, v) -> Alcotest.check qt "value" Q.one v
  | _ -> Alcotest.fail "expected optimal"

let test_membership_triangle () =
  let tri = [ Vec.of_ints [0; 0]; Vec.of_ints [4; 0]; Vec.of_ints [0; 4] ] in
  Alcotest.(check bool) "inside" true
    (Lp.in_convex_hull tri (Vec.of_ints [1; 1]));
  Alcotest.(check bool) "vertex" true
    (Lp.in_convex_hull tri (Vec.of_ints [4; 0]));
  Alcotest.(check bool) "edge" true
    (Lp.in_convex_hull tri (Vec.of_ints [2; 2]));
  Alcotest.(check bool) "outside" false
    (Lp.in_convex_hull tri (Vec.of_ints [3; 3]));
  Alcotest.(check bool) "empty hull" false
    (Lp.in_convex_hull [] (Vec.of_ints [0; 0]))

let test_feasible_system () =
  (* Box 0 <= x,y <= 1 intersected with x + y = 3/2. *)
  let one = Q.one in
  let ex = Vec.of_ints [1; 0] and ey = Vec.of_ints [0; 1] in
  let ineqs =
    [ (ex, one); (ey, one); (Vec.neg ex, Q.zero); (Vec.neg ey, Q.zero) ]
  in
  let eqs = [ (Vec.of_ints [1; 1], Q.of_ints 3 2) ] in
  (match Lp.feasible_system ~dim:2 ~eqs ~ineqs with
   | Some x ->
     Alcotest.check qt "on line" (Q.of_ints 3 2) (Q.add x.(0) x.(1));
     Alcotest.(check bool) "in box" true
       Q.(leq zero x.(0) && leq x.(0) one && leq zero x.(1) && leq x.(1) one)
   | None -> Alcotest.fail "expected feasible");
  (* Now x + y = 3 is out of reach of the box. *)
  let eqs_bad = [ (Vec.of_ints [1; 1], Q.of_int 3) ] in
  Alcotest.(check bool) "infeasible" true
    (Lp.feasible_system ~dim:2 ~eqs:eqs_bad ~ineqs = None)

(* Membership must agree with a direct convex-combination witness. *)
let prop_membership_of_combination =
  let gen =
    let open QCheck.Gen in
    let* pts = Gen.gen_points ~min_size:1 ~max_size:6 2 in
    let* raw = list_size (return (List.length pts)) (1 -- 10) in
    return (pts, raw)
  in
  Gen.prop ~count:200 "combination is member"
    (QCheck.make
       ~print:(fun (pts, _) -> Gen.print_points pts)
       gen)
    (fun (pts, raw) ->
       let total = Q.of_int (List.fold_left ( + ) 0 raw) in
       let weights = List.map (fun r -> Q.div (Q.of_int r) total) raw in
       let p = Vec.lincomb (List.combine weights pts) in
       Lp.in_convex_hull pts p)

let prop_outside_bbox_not_member =
  Gen.prop ~count:200 "point beyond the bounding box is not a member"
    (Gen.arb_points ~min_size:1 ~max_size:6 2)
    (fun pts ->
       let far =
         Vec.add
           (Vec.of_ints [100; 100])
           (List.fold_left
              (fun acc p -> Array.mapi (fun i c -> Q.max c p.(i)) acc)
              (Vec.of_ints [-100; -100]) pts)
       in
       not (Lp.in_convex_hull pts far))

let suite =
  [ ( "lp",
      [ Alcotest.test_case "maximize known" `Quick test_maximize_known;
        Alcotest.test_case "infeasible" `Quick test_infeasible;
        Alcotest.test_case "unbounded" `Quick test_unbounded;
        Alcotest.test_case "redundant rows" `Quick test_degenerate_redundant;
        Alcotest.test_case "triangle membership" `Quick test_membership_triangle;
        Alcotest.test_case "feasible system" `Quick test_feasible_system ]
      @ List.map Gen.qtest
          [ prop_membership_of_combination; prop_outside_bbox_not_member ] ) ]
