module Q = Numeric.Q
module Vec = Geometry.Vec
module P = Geometry.Polytope

let v2 x y = Vec.of_ints [x; y]
let qt = Alcotest.testable Q.pp Q.equal
let pt = Alcotest.testable P.pp P.equal

let square a b =
  P.of_points ~dim:2 [v2 a a; v2 b a; v2 b b; v2 a b]

let test_equal_canonical () =
  let p1 = P.of_points ~dim:2 [v2 0 0; v2 2 0; v2 2 2; v2 0 2; v2 1 1] in
  let p2 = P.of_points ~dim:2 [v2 2 2; v2 0 2; v2 0 0; v2 1 0; v2 2 0] in
  Alcotest.check pt "same set, same canonical form" p1 p2

let test_subset () =
  Alcotest.(check bool) "nested" true (P.subset (square 1 2) (square 0 3));
  Alcotest.(check bool) "not nested" false (P.subset (square 0 3) (square 1 2));
  Alcotest.(check bool) "self" true (P.subset (square 0 3) (square 0 3))

let test_average_identity () =
  (* For a convex set, (1/2)P ⊕ (1/2)P = P. *)
  let p = P.of_points ~dim:2 [v2 0 0; v2 4 0; v2 1 3] in
  Alcotest.check pt "self-average" p (P.average [p; p])

let test_average_of_points () =
  (* L of singletons is the singleton of the average. *)
  let a = P.singleton (v2 0 0) and b = P.singleton (v2 2 4) in
  Alcotest.check pt "midpoint" (P.singleton (v2 1 2)) (P.average [a; b])

let test_lincomb_weights_validation () =
  let p = square 0 1 in
  Alcotest.check_raises "weights must sum to 1"
    (Invalid_argument "Polytope.linear_combination: weights must sum to 1")
    (fun () -> ignore (P.linear_combination [(Q.half, p); (Q.half, p); (Q.half, p)]));
  Alcotest.check_raises "no negative weights"
    (Invalid_argument "Polytope.linear_combination: negative weight")
    (fun () ->
       ignore (P.linear_combination [(Q.of_int 2, p); (Q.minus_one, p)]))

let test_volume () =
  Alcotest.(check (option (Alcotest.testable Q.pp Q.equal))) "square"
    (Some (Q.of_int 9)) (P.volume (square 0 3));
  let seg = P.of_points ~dim:1 [Vec.of_ints [2]; Vec.of_ints [7]] in
  Alcotest.(check (option qt)) "interval length" (Some (Q.of_int 5)) (P.volume seg);
  let p4 = P.of_points ~dim:4 [Vec.of_ints [0;0;0;0]; Vec.of_ints [1;0;0;0]] in
  Alcotest.(check (option qt)) "4d unsupported" None (P.volume p4)

let test_intersect_empty () =
  Alcotest.(check bool) "disjoint" true
    (P.intersect [square 0 1; square 5 6] = None);
  (match P.intersect [square 0 2; square 2 4] with
   | Some p -> Alcotest.(check bool) "corner touch is a point" true (P.is_point p)
   | None -> Alcotest.fail "touching squares intersect")

let test_support () =
  let p = square 0 3 in
  let value, arg = P.support p (v2 1 1) in
  Alcotest.check qt "support value" (Q.of_int 6) value;
  Alcotest.(check bool) "arg is the far corner" true (Vec.equal arg (v2 3 3))

let test_steiner_inside () =
  let p = P.of_points ~dim:2 [v2 0 0; v2 7 1; v2 3 5] in
  Alcotest.(check bool) "steiner inside" true (P.contains p (P.steiner_point p));
  let seg = P.of_points ~dim:1 [Vec.of_ints [0]; Vec.of_ints [4]] in
  Alcotest.(check bool) "1d midpoint" true
    (Vec.equal (P.steiner_point seg) (Vec.of_ints [2]))

(* --- properties ------------------------------------------------------ *)

let arb_poly dim =
  QCheck.make
    ~print:(fun p -> P.to_string p)
    (QCheck.Gen.map
       (fun pts -> P.of_points ~dim pts)
       (Gen.gen_points ~min_size:1 ~max_size:7 dim))

let props =
  [ Gen.prop "average of two copies is identity" (arb_poly 2)
      (fun p -> P.equal p (P.average [p; p]));
    Gen.prop "hausdorff2 zero iff equal" (QCheck.pair (arb_poly 2) (arb_poly 2))
      (fun (p, q) -> Q.is_zero (P.hausdorff2 p q) = P.equal p q);
    Gen.prop "hausdorff symmetric" (QCheck.pair (arb_poly 2) (arb_poly 2))
      (fun (p, q) -> Q.equal (P.hausdorff2 p q) (P.hausdorff2 q p));
    Gen.prop "hausdorff triangle inequality"
      (QCheck.triple (arb_poly 2) (arb_poly 2) (arb_poly 2))
      (fun (a, b, c) ->
         P.hausdorff a c <= P.hausdorff a b +. P.hausdorff b c +. 1e-9);
    Gen.prop "intersection is a subset of both"
      (QCheck.pair (arb_poly 2) (arb_poly 2))
      (fun (p, q) ->
         match P.intersect [p; q] with
         | None -> true
         | Some r -> P.subset r p && P.subset r q);
    Gen.prop "intersection volume monotone"
      (QCheck.pair (arb_poly 2) (arb_poly 2))
      (fun (p, q) ->
         match P.intersect [p; q], P.volume p with
         | Some r, Some vp ->
           (match P.volume r with
            | Some vr -> Q.leq vr vp
            | None -> false)
         | _ -> true);
    Gen.prop "L is translation covariant"
      (QCheck.triple (arb_poly 2) (arb_poly 2) (Gen.arb_vec 2))
      (fun (p, q, t) ->
         (* average (p + t) q = (average p q) + t/2 *)
         let lhs = P.average [P.translate t p; q] in
         let rhs = P.translate (Vec.scale Q.half t) (P.average [p; q]) in
         P.equal lhs rhs);
    Gen.prop "average subset of hull of union"
      (QCheck.pair (arb_poly 2) (arb_poly 2))
      (fun (p, q) ->
         let hull_union =
           P.of_points ~dim:2 (P.vertices p @ P.vertices q)
         in
         P.subset (P.average [p; q]) hull_union);
    Gen.prop "steiner point inside" (arb_poly 2)
      (fun p -> P.contains p (P.steiner_point p));
    Gen.prop "centroid inside" (arb_poly 2)
      (fun p -> P.contains p (P.centroid p));
    Gen.prop ~count:60 "3d averages keep subset relation with hull union"
      (QCheck.pair (arb_poly 3) (arb_poly 3))
      (fun (p, q) ->
         let hull_union = P.of_points ~dim:3 (P.vertices p @ P.vertices q) in
         P.subset (P.average [p; q]) hull_union);
    Gen.prop ~count:60 "1d behaves like interval arithmetic"
      (QCheck.pair (arb_poly 1) (arb_poly 1))
      (fun (p, q) ->
         let bounds poly =
           let b = (P.bounding_box poly).(0) in
           b
         in
         let (plo, phi) = bounds p and (qlo, qhi) = bounds q in
         let avg = P.average [p; q] in
         let (alo, ahi) = bounds avg in
         Q.equal alo (Q.div (Q.add plo qlo) Q.two)
         && Q.equal ahi (Q.div (Q.add phi qhi) Q.two));
  ]

let suite =
  [ ( "polytope",
      [ Alcotest.test_case "canonical equality" `Quick test_equal_canonical;
        Alcotest.test_case "subset" `Quick test_subset;
        Alcotest.test_case "self-average" `Quick test_average_identity;
        Alcotest.test_case "average of points" `Quick test_average_of_points;
        Alcotest.test_case "weight validation" `Quick test_lincomb_weights_validation;
        Alcotest.test_case "volume" `Quick test_volume;
        Alcotest.test_case "intersect empty/touching" `Quick test_intersect_empty;
        Alcotest.test_case "support" `Quick test_support;
        Alcotest.test_case "steiner" `Quick test_steiner_inside ]
      @ List.map Gen.qtest props ) ]
