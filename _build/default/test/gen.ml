(* Shared QCheck generators for geometric tests. *)

module Q = Numeric.Q
module Vec = Geometry.Vec

let gen_small_q =
  let open QCheck.Gen in
  let* n = -20 -- 20 in
  let* d = 1 -- 8 in
  return (Q.of_ints n d)

let gen_vec dim = QCheck.Gen.map Array.of_list
    (QCheck.Gen.list_size (QCheck.Gen.return dim) gen_small_q)

let gen_int_vec dim =
  QCheck.Gen.map
    (fun l -> Vec.of_ints l)
    (QCheck.Gen.list_size (QCheck.Gen.return dim) QCheck.Gen.(-10 -- 10))

let gen_points ?(min_size = 1) ?(max_size = 8) dim =
  let open QCheck.Gen in
  let* n = min_size -- max_size in
  list_size (return n) (gen_vec dim)

let gen_int_points ?(min_size = 1) ?(max_size = 8) dim =
  let open QCheck.Gen in
  let* n = min_size -- max_size in
  list_size (return n) (gen_int_vec dim)

let print_points pts =
  String.concat " " (List.map Vec.to_string pts)

let arb_points ?min_size ?max_size dim =
  QCheck.make ~print:print_points (gen_points ?min_size ?max_size dim)

let arb_int_points ?min_size ?max_size dim =
  QCheck.make ~print:print_points (gen_int_points ?min_size ?max_size dim)

let arb_vec dim = QCheck.make ~print:Vec.to_string (gen_vec dim)

let qtest = QCheck_alcotest.to_alcotest
let prop ?(count = 200) name arb f = QCheck.Test.make ~count ~name arb f
