(* Section 7: function optimization over the consensus hull — the
   2-step algorithm's guarantees (validity, termination, weak
   β-optimality) and the Theorem-4 counterexample mechanics. *)

module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module Config = Chc.Config
module Executor = Chc.Executor
module Opt = Chc.Optimize
module Crash = Runtime.Crash

let qt = Alcotest.testable Q.pp Q.equal
let v2 x y = Vec.of_ints [x; y]

let test_linear_minimize () =
  let p = Polytope.of_points ~dim:2 [v2 0 0; v2 4 0; v2 0 4; v2 4 4] in
  let c = Opt.linear ~name:"x+y" (Vec.of_ints [1; 1]) in
  let y = c.Opt.minimize p in
  Alcotest.(check bool) "corner" true (Vec.equal y (v2 0 0));
  Alcotest.check qt "value" Q.zero (c.Opt.eval y);
  (* Tie between two corners breaks to the lexicographically smaller. *)
  let c2 = Opt.linear ~name:"y" (Vec.of_ints [0; 1]) in
  Alcotest.(check bool) "tie-break" true (Vec.equal (c2.Opt.minimize p) (v2 0 0))

let test_quadratic_minimize () =
  let p = Polytope.of_points ~dim:2 [v2 0 0; v2 2 0; v2 2 2; v2 0 2] in
  let c = Opt.quadratic_distance ~name:"dist to (3,1)" (v2 3 1) ~lipschitz_hint:10.0 in
  let y = c.Opt.minimize p in
  Alcotest.(check bool) "projection (2,1)" true (Vec.equal y (v2 2 1));
  Alcotest.check qt "value 1" Q.one (c.Opt.eval y);
  (* Target inside: cost 0 at the target itself. *)
  let c0 = Opt.quadratic_distance ~name:"inside" (v2 1 1) ~lipschitz_hint:10.0 in
  Alcotest.check qt "zero" Q.zero (c0.Opt.eval (c0.Opt.minimize p))

let test_theorem4_cost () =
  let e x = Opt.theorem4_cost.Opt.eval (Vec.make [x]) in
  Alcotest.check qt "c(0) = 3" (Q.of_int 3) (e Q.zero);
  Alcotest.check qt "c(1) = 3" (Q.of_int 3) (e Q.one);
  Alcotest.check qt "c(1/2) = 4" (Q.of_int 4) (e Q.half);
  Alcotest.check qt "c(2) = 3" (Q.of_int 3) (e Q.two);
  (* Minimize over [1/4, 3/4]: endpoints tie at 15/4, pick 1/4. *)
  let p = Polytope.of_points ~dim:1 [Vec.make [Q.of_ints 1 4]; Vec.make [Q.of_ints 3 4]] in
  let y = Opt.theorem4_cost.Opt.minimize p in
  Alcotest.check qt "argmin 1/4" (Q.of_ints 1 4) y.(0);
  (* Over [0, 1/2] the left endpoint 0 wins with value 3. *)
  let p2 = Polytope.of_points ~dim:1 [Vec.make [Q.zero]; Vec.make [Q.half]] in
  Alcotest.check qt "argmin 0" Q.zero ((Opt.theorem4_cost.Opt.minimize p2)).(0)

let cfg = Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 8) ~lo:Q.zero ~hi:Q.one

let test_two_step_beta () =
  (* Weak β-optimality part (i): spread of cost values bounded by ε·b.
     With eps = 1/8 and a 1-Lipschitz linear cost, spread < 1/8. *)
  let r = Executor.run (Executor.default_spec ~config:cfg ~seed:51 ()) in
  let cost = Opt.linear ~name:"x" (Vec.of_ints [1; 0]) in
  let rep =
    Opt.two_step ~config:cfg ~faulty:r.Executor.faulty
      ~result:r.Executor.result ~cost
  in
  (match rep.Opt.beta_spread with
   | Some s ->
     Alcotest.(check bool) "spread <= eps * b" true
       (Q.leq s (Q.of_ints 1 8))
   | None -> Alcotest.fail "no outputs");
  (* Validity of the minimizers: each y_i lies in its own (valid)
     decision polytope. *)
  Array.iteri
    (fun i o ->
       match o, r.Executor.result.Chc.Cc.outputs.(i) with
       | Some (y, _), Some h ->
         Alcotest.(check bool) "y in h" true (Polytope.contains h y)
       | None, None -> ()
       | _ -> Alcotest.fail "mismatch")
    rep.Opt.outputs

let test_weak_optimality_part2 () =
  (* Part (ii): if 2f+1 processes share input x_star, every fault-free
     process learns c(y_i) <= c(x_star). Here 3 of 5 processes hold x_star and
     the cost is distance-to-origin. *)
  let xstar = Vec.make [Q.of_ints 3 4; Q.of_ints 3 4] in
  let spec = Executor.default_spec ~config:cfg ~seed:52 () in
  let inputs = Array.copy spec.Executor.inputs in
  inputs.(1) <- xstar; inputs.(2) <- xstar; inputs.(3) <- xstar;
  let r = Executor.run { spec with Executor.inputs = inputs } in
  let cost = Opt.quadratic_distance ~name:"d2(0)" (v2 0 0) ~lipschitz_hint:4.0 in
  let rep =
    Opt.two_step ~config:cfg ~faulty:r.Executor.faulty
      ~result:r.Executor.result ~cost
  in
  let cstar = cost.Opt.eval xstar in
  Array.iteri
    (fun i o ->
       if not (List.mem i r.Executor.faulty) then begin
         match o with
         | Some (_, v) ->
           Alcotest.(check bool) "c(y_i) <= c(x_star)" true (Q.leq v cstar)
         | None -> Alcotest.fail "fault-free undecided"
       end)
    rep.Opt.outputs

let test_theorem4_disagreement_mechanics () =
  (* The impossibility argument's engine: with binary inputs, the
     2-step algorithm can output argmin 0 at one process and 1 at
     another run/polytope — equal cost values (weak optimality holds)
     but no ε-agreement on the points themselves. We exhibit the two
     polytopes directly. *)
  let p01 = Polytope.of_points ~dim:1 [Vec.make [Q.zero]; Vec.make [Q.of_ints 2 5]] in
  let p11 = Polytope.of_points ~dim:1 [Vec.make [Q.of_ints 3 5]; Vec.make [Q.one]] in
  let y0 = Opt.theorem4_cost.Opt.minimize p01 in
  let y1 = Opt.theorem4_cost.Opt.minimize p11 in
  Alcotest.check qt "y0 = 0" Q.zero y0.(0);
  Alcotest.check qt "y1 = 1" Q.one y1.(0);
  Alcotest.check qt "equal cost"
    (Opt.theorem4_cost.Opt.eval y0) (Opt.theorem4_cost.Opt.eval y1);
  Alcotest.(check bool) "but points far apart" true
    (Q.geq (Vec.dist2 y0 y1) Q.one)

let test_eps_for_beta () =
  let eps = Opt.eps_for_beta ~beta:(Q.of_ints 1 2) ~lipschitz_hint:3.2 in
  (* b rounded up to 5; eps = 1/10. *)
  Alcotest.check qt "eps" (Q.of_ints 1 10) eps;
  Alcotest.check_raises "beta must be positive"
    (Invalid_argument "Optimize.eps_for_beta: beta <= 0")
    (fun () -> ignore (Opt.eps_for_beta ~beta:Q.zero ~lipschitz_hint:1.0))

let prop_two_step_spread =
  Gen.prop ~count:10 "beta spread bounded across seeds"
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000))
    (fun seed ->
       let r = Executor.run (Executor.default_spec ~config:cfg ~seed ()) in
       let cost = Opt.linear ~name:"x+2y" (Vec.of_ints [1; 2]) in
       let rep =
         Opt.two_step ~config:cfg ~faulty:r.Executor.faulty
           ~result:r.Executor.result ~cost
       in
       (* b = |(1,2)| = sqrt 5 < 3; eps·b < 3/8. *)
       match rep.Opt.beta_spread with
       | Some s -> Q.leq s (Q.of_ints 3 8)
       | None -> false)

let suite =
  [ ( "optimize",
      [ Alcotest.test_case "linear minimize" `Quick test_linear_minimize;
        Alcotest.test_case "quadratic minimize" `Quick test_quadratic_minimize;
        Alcotest.test_case "theorem4 cost" `Quick test_theorem4_cost;
        Alcotest.test_case "two-step beta bound" `Quick test_two_step_beta;
        Alcotest.test_case "weak optimality (ii)" `Quick test_weak_optimality_part2;
        Alcotest.test_case "theorem4 disagreement" `Quick
          test_theorem4_disagreement_mechanics;
        Alcotest.test_case "eps_for_beta" `Quick test_eps_for_beta ]
      @ List.map Gen.qtest [ prop_two_step_spread ] ) ]
