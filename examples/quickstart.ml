(* Quickstart: five processes agree on a convex polytope inside the
   hull of the fault-free inputs, tolerating one crash fault with an
   incorrect input.

   Run with:  dune exec examples/quickstart.exe *)

module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope

let () =
  (* n = 5 processes, f = 1 fault, inputs in the unit square (d = 2),
     agreement parameter ε = 1/10. n = (d+2)f + 1 is exactly the
     paper's resilience bound. *)
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 10)
      ~lo:Q.zero ~hi:Q.one
  in
  Printf.printf "configuration: n=5 f=1 d=2 eps=0.1  (t_end = %d rounds)\n\n"
    (Chc.Bounds.t_end config);

  (* Four correct processes hold estimates of some quantity; process 0
     is faulty: its input is garbage and it will crash mid-protocol
     (after 20 sends). *)
  let q = Q.of_string in
  let inputs =
    [| Vec.make [q "0.9"; q "0.9"];   (* faulty / incorrect *)
       Vec.make [q "0.10"; q "0.20"];
       Vec.make [q "0.30"; q "0.05"];
       Vec.make [q "0.25"; q "0.40"];
       Vec.make [q "0.05"; q "0.35"] |]
  in
  let crash = Array.make 5 Runtime.Crash.Never in
  crash.(0) <- Runtime.Crash.After_sends 20;

  let spec =
    Chc.Scenario.make ~config ~inputs ~crash
      ~scheduler:Runtime.Scheduler.random_uniform
      ~seed:2014 ()                      (* executions are deterministic *)
  in
  let report = Chc.Executor.run spec in

  Array.iteri
    (fun i output ->
       match output with
       | Some h ->
         Printf.printf "process %d decides %s\n" i (Polytope.to_string h)
       | None -> Printf.printf "process %d crashed before deciding\n" i)
    report.Chc.Executor.result.Chc.Cc.outputs;

  Printf.printf "\nproperties (checked exactly, in rational arithmetic):\n";
  Printf.printf "  termination : %b\n" report.Chc.Executor.terminated;
  Printf.printf "  validity    : %b   (outputs inside hull of correct inputs)\n"
    report.Chc.Executor.valid;
  Printf.printf "  ε-agreement : %b   (max pairwise d_H = %.6f < 0.1)\n"
    report.Chc.Executor.agreement_ok
    (match report.Chc.Executor.agreement2 with
     | Some a2 -> sqrt (Q.to_float a2)
     | None -> 0.0);
  Printf.printf "  optimality  : %b   (I_Z contained in every decision)\n"
    report.Chc.Executor.optimal;
  (match report.Chc.Executor.min_output_volume with
   | Some v ->
     Printf.printf "\nthe decision is a genuine region: area >= %.6f\n"
       (Q.to_float v)
   | None -> ())
