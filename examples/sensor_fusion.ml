(* Sensor fusion: a swarm of 9 ranging stations estimates a target's
   position on a 2-d map. Two stations are faulty — their calibration
   is off (incorrect inputs) and they die mid-mission (crash faults).
   Convex hull consensus gives every surviving station the *same*
   certified region that (a) lies inside the hull of the honest
   estimates and (b) is as large as any algorithm could promise
   (Theorem 3), so downstream planning can treat the whole region as
   trustworthy.

   Run with:  dune exec examples/sensor_fusion.exe *)

module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope

let q = Q.of_string

let () =
  let n = 9 and f = 2 in
  let config =
    Chc.Config.make ~n ~f ~d:2 ~eps:(Q.of_ints 1 20) ~lo:Q.zero ~hi:(Q.of_int 10)
  in

  (* The target truly sits at (4.2, 5.1). Honest stations measure it
     with small biases; the two faulty stations (ids 7, 8) report
     positions that are far off. *)
  let target = Vec.make [q "4.2"; q "5.1"] in
  let inputs =
    [| Vec.make [q "4.0"; q "5.0"];
       Vec.make [q "4.5"; q "5.3"];
       Vec.make [q "4.3"; q "4.8"];
       Vec.make [q "3.9"; q "5.2"];
       Vec.make [q "4.4"; q "5.15"];
       Vec.make [q "4.1"; q "4.9"];
       Vec.make [q "4.6"; q "5.0"];
       Vec.make [q "9.5"; q "0.5"];   (* faulty: wildly miscalibrated *)
       Vec.make [q "0.2"; q "9.8"] |] (* faulty: wildly miscalibrated *)
  in
  (* Station 7 dies during its very first broadcast (3 of its messages
     get out); station 8 dies a little later. *)
  let crash = Array.make n Runtime.Crash.Never in
  crash.(7) <- Runtime.Crash.After_sends 3;
  crash.(8) <- Runtime.Crash.After_sends 25;

  let spec =
    Chc.Scenario.make ~config ~inputs ~crash
      ~scheduler:(Runtime.Scheduler.lag_sources [7; 8]) ~seed:7 ()
  in
  let report = Chc.Executor.run spec in

  Printf.printf "stations fused their estimates (t_end = %d rounds, %d messages)\n\n"
    report.Chc.Executor.result.Chc.Cc.t_end
    report.Chc.Executor.result.Chc.Cc.metrics.Runtime.Sim.sent;

  let an_output =
    let rec first i =
      if i >= n then None
      else match report.Chc.Executor.result.Chc.Cc.outputs.(i) with
        | Some h when not (List.mem i report.Chc.Executor.faulty) -> Some h
        | _ -> first (i + 1)
    in
    first 0
  in
  (match an_output with
   | Some h ->
     Printf.printf "certified region (station 0's copy):\n  %s\n"
       (Polytope.to_string h);
     (match Polytope.volume h with
      | Some v -> Printf.printf "  area: %.5f\n" (Q.to_float v)
      | None -> ());
     let d_target =
       sqrt (Q.to_float
               (Geometry.Distance.dist2_point_hull ~dim:2 target
                  (Polytope.vertices h)))
     in
     Printf.printf "  distance from true target to region: %.4f\n" d_target;
     Printf.printf "  (honest estimates straddle the target, so the region sits on it)\n"
   | None -> print_endline "no fault-free station decided (bug!)");

  Printf.printf "\nall surviving stations agree on (almost) the same region:\n";
  Printf.printf "  max pairwise Hausdorff distance: %.6f  (ε = 0.05)\n"
    (match report.Chc.Executor.agreement2 with
     | Some a2 -> sqrt (Q.to_float a2)
     | None -> 0.0);
  Printf.printf "  validity: %b, optimality: %b\n"
    report.Chc.Executor.valid report.Chc.Executor.optimal;

  (* The faulty inputs did not poison the result: the region excludes
     both bogus readings. *)
  (match an_output with
   | Some h ->
     Printf.printf "\nbogus readings excluded from the region: %b, %b\n"
       (not (Polytope.contains h inputs.(7)))
       (not (Polytope.contains h inputs.(8)))
   | None -> ())
