(* Distributed function optimization (Section 7 of the paper).

   A fleet of delivery robots must pick a staging point that minimizes
   the squared distance to the depot, but the staging point has to be
   inside the region all honest robots consider reachable — the convex
   hull of their (correct) position inputs. The 2-step algorithm runs
   convex hull consensus first and then minimizes the cost over the
   decided polytope. The paper proves this achieves validity,
   termination and weak β-optimality, but NOT ε-agreement on the chosen
   points — and Theorem 4 shows that is inherent. This example
   demonstrates both halves.

   Run with:  dune exec examples/distributed_minimize.exe *)

module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module Opt = Chc.Optimize

let q = Q.of_string

let () =
  let n = 5 and f = 1 in
  (* Target spread β = 1/2 for a cost that is at most 6-Lipschitz on
     the input box: run consensus with ε = β / b. *)
  let beta = Q.half in
  let lipschitz_hint = 6.0 in
  let eps = Opt.eps_for_beta ~beta ~lipschitz_hint in
  let config =
    Chc.Config.make ~n ~f ~d:2 ~eps ~lo:Q.zero ~hi:(Q.of_int 2)
  in
  Printf.printf "Step 1: convex hull consensus with ε = %s (t_end = %d)\n"
    (Q.to_string eps) (Chc.Bounds.t_end config);

  let inputs =
    [| Vec.make [q "1.9"; q "0.1"];  (* faulty robot, wrong position *)
       Vec.make [q "0.3"; q "0.4"];
       Vec.make [q "0.8"; q "1.1"];
       Vec.make [q "0.5"; q "0.9"];
       Vec.make [q "1.1"; q "0.6"] |]
  in
  let crash = Array.make n Runtime.Crash.Never in
  crash.(0) <- Runtime.Crash.After_sends 40;
  let spec =
    Chc.Scenario.make ~config ~inputs ~crash
      ~scheduler:Runtime.Scheduler.random_uniform ~seed:99 ()
  in
  let report = Chc.Executor.run spec in
  assert report.Chc.Executor.terminated;

  (* Step 2: minimize the cost over each robot's decided polytope. *)
  let depot = Vec.make [Q.zero; Q.zero] in
  let cost = Opt.quadratic_distance ~name:"dist² to depot" depot ~lipschitz_hint in
  let rep =
    Opt.two_step ~config ~faulty:report.Chc.Executor.faulty
      ~result:report.Chc.Executor.result ~cost
  in
  Printf.printf "\nStep 2: each robot minimizes %s over its polytope:\n"
    cost.Opt.name;
  Array.iteri
    (fun i o ->
       match o with
       | Some (y, v) ->
         Printf.printf "  robot %d: staging point (%.4f, %.4f), cost %.5f\n"
           i (Q.to_float y.(0)) (Q.to_float y.(1)) (Q.to_float v)
       | None -> Printf.printf "  robot %d: crashed\n" i)
    rep.Opt.outputs;
  (match rep.Opt.beta_spread with
   | Some s ->
     Printf.printf "\nweak β-optimality: cost spread %.6f <= β = %.2f  (%b)\n"
       (Q.to_float s) (Q.to_float beta) (Q.leq s beta)
   | None -> ());

  (* The inherent limitation (Theorem 4): for the concave "two valleys"
     cost of the impossibility proof, nearly identical polytopes can
     yield argmins at opposite ends — agreement on cost VALUES, not on
     the points. *)
  print_endline "\nTheorem-4 counterexample cost, c(x) = 4 - (2x-1)² on [0,1]:";
  let near0 = Polytope.of_points ~dim:1 [Vec.make [Q.zero]; Vec.make [q "0.45"]] in
  let near1 = Polytope.of_points ~dim:1 [Vec.make [q "0.55"]; Vec.make [Q.one]] in
  let y0 = Opt.theorem4_cost.Opt.minimize near0 in
  let y1 = Opt.theorem4_cost.Opt.minimize near1 in
  Printf.printf "  polytope [0,0.45]   -> argmin %s (cost %s)\n"
    (Q.to_string y0.(0)) (Q.to_string (Opt.theorem4_cost.Opt.eval y0));
  Printf.printf "  polytope [0.55,1]   -> argmin %s (cost %s)\n"
    (Q.to_string y1.(0)) (Q.to_string (Opt.theorem4_cost.Opt.eval y1));
  print_endline "  equal costs, but the chosen points are 1 apart: ε-agreement on";
  print_endline "  the argmin is impossible in general (Theorem 4 / FLP)."
