(* Rendezvous: drones agree on a meeting POINT via two routes and
   compare what they get.

   (a) Vector consensus derived from convex hull consensus: run
       Algorithm CC, then take the Steiner point of the decided
       polytope — the paper's "convex hull consensus trivially yields
       vector consensus" reduction.
   (b) The standalone point-valued baseline (Algorithm VC): identical
       round structure, but the state collapses to a point after
       round 0.

   Both satisfy validity and ε-agreement; the difference is what else
   you know at the end. Route (a) also hands every drone the whole
   certified region — useful if the rendezvous must be re-planned —
   while (b) only ever knows a point. The example quantifies that gap
   (region area vs. zero) and the message-size economics.

   Run with:  dune exec examples/rendezvous.exe *)

module Q = Numeric.Q
module Vec = Geometry.Vec
module Polytope = Geometry.Polytope
module VC = Chc.Vector_consensus

let q = Q.of_string

let () =
  let n = 6 and f = 1 in
  let config =
    Chc.Config.make ~n ~f ~d:2 ~eps:(Q.of_ints 1 10) ~lo:Q.zero ~hi:(Q.of_int 4)
  in
  let inputs =
    [| Vec.make [q "0.5"; q "0.5"];
       Vec.make [q "3.5"; q "0.5"];
       Vec.make [q "3.5"; q "3.5"];
       Vec.make [q "0.5"; q "3.5"];
       Vec.make [q "1.9"; q "2.2"];
       Vec.make [q "3.9"; q "0.1"] |] (* faulty drone, bogus position *)
  in
  let crash = Array.make n Runtime.Crash.Never in
  crash.(5) <- Runtime.Crash.After_sends 15;
  let scheduler = Runtime.Scheduler.random_uniform in

  (* Route (a): convex hull consensus, then Steiner points. *)
  let spec = Chc.Scenario.make ~config ~inputs ~crash ~scheduler ~seed:3 () in
  let report = Chc.Executor.run spec in
  let points_a = VC.derived_outputs report.Chc.Executor.result in
  let metrics_a = report.Chc.Executor.result.Chc.Cc.metrics in

  (* Route (b): the point-valued baseline on the same inputs/faults. *)
  let res_b = VC.execute_baseline ~config ~inputs ~crash ~scheduler ~seed:3 () in

  print_endline "route (a): convex hull consensus + Steiner point";
  Array.iteri
    (fun i p ->
       match p with
       | Some y ->
         Printf.printf "  drone %d meets at (%.4f, %.4f)\n"
           i (Q.to_float y.(0)) (Q.to_float y.(1))
       | None -> Printf.printf "  drone %d crashed\n" i)
    points_a;
  (match report.Chc.Executor.min_output_volume with
   | Some v ->
     Printf.printf "  ...and also knows a certified region of area %.4f\n"
       (Q.to_float v)
   | None -> ());

  print_endline "\nroute (b): point-valued baseline (Algorithm VC)";
  Array.iteri
    (fun i p ->
       match p with
       | Some y ->
         Printf.printf "  drone %d meets at (%.4f, %.4f)\n"
           i (Q.to_float y.(0)) (Q.to_float y.(1))
       | None -> Printf.printf "  drone %d crashed\n" i)
    res_b.VC.outputs;
  print_endline "  ...and knows nothing beyond that point.";

  Printf.printf "\nmessage counts: CC %d vs VC %d (same round structure;\n"
    metrics_a.Runtime.Sim.sent res_b.VC.metrics.Runtime.Sim.sent;
  print_endline "CC messages carry polytopes, VC messages carry single points —";
  print_endline "the information advantage is paid for in bandwidth, not rounds)"
