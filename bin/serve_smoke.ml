(* Serving-daemon smoke pass (dune build @serve-smoke, part of @ci):

   1. 200 mixed instances — the E15 workload shapes, including
      crash-recovery ones — through an in-process server, every
      decision graded against Theorem 2 on the spot;
   2. the Prometheus exposition must contain every chc_serve metric
      family the daemon advertises;
   3. when handed the daemon binary (argv 1), a real-socket leg: spawn
      [chc_serve listen] on an ephemeral port, submit 200 mixed
      instances as length-prefixed frames over TCP, scrape the admin
      plane (/metrics, /statusz, /healthz — protocol-hijacked on the
      same port) MID-RUN while the daemon still owes decisions, check
      every Decision against an in-process re-execution of the same
      inputs, and parse every line of the daemon's JSONL log. *)

module Q = Numeric.Q
module Frame = Serve.Frame
module Server = Serve.Server
module Workload = Serve.Workload

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let check name b = if not b then fail "%s" name else Printf.printf "ok: %s\n%!" name

(* --- leg 1: in-process workload -------------------------------------- *)

let in_process () =
  let server = Server.create ~fuel:64 () in
  let rng = Runtime.Rng.create 77 in
  let phase =
    Workload.closed_loop ~server ~rng ~mix:Workload.default_mix
      ~label:"smoke" ~first_id:0 ~concurrency:64 ~total:200 ()
  in
  check "200 mixed instances decided" (phase.Workload.instances = 200);
  (match phase.Workload.grade_failures with
   | [] -> Printf.printf "ok: Theorem 2 holds for all 200 (%.1f inst/s)\n%!"
             phase.Workload.throughput_ips
   | msg :: _ ->
     fail "%d Theorem 2 violation(s), first: %s"
       (List.length phase.Workload.grade_failures) msg)

(* --- leg 2: metric families ------------------------------------------ *)

let metric_families () =
  (* touch the frame codec so its counter families exist too *)
  let dec = Frame.decoder () in
  Frame.feed dec (Frame.encode_frame "probe");
  (match Frame.next dec with
   | Some "probe" -> ()
   | _ -> fail "frame probe did not round-trip");
  let exposition = Obs.Metrics.exposition_all () in
  List.iter
    (fun family ->
       let found =
         let flen = String.length family and elen = String.length exposition in
         let rec scan i =
           i + flen <= elen
           && (String.sub exposition i flen = family || scan (i + 1))
         in
         scan 0
       in
       check (Printf.sprintf "exposition contains %s" family) found)
    [ "chc_serve_instances_total"; "chc_serve_inflight";
      "chc_serve_throughput_ips"; "chc_serve_decision_latency_seconds";
      "chc_serve_frames_total"; "chc_serve_frame_bytes_total" ]

(* --- leg 3: the daemon over a real socket ----------------------------- *)

let read_port daemon_out =
  (* first line: "chc_serve: listening on 127.0.0.1:PORT (...)" *)
  let line = input_line daemon_out in
  match String.rindex_opt line ':' with
  | None -> fail "cannot parse daemon banner: %s" line
  | Some i ->
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    (match int_of_string_opt (List.hd (String.split_on_char ' ' rest)) with
     | Some p -> p
     | None -> fail "cannot parse port from banner: %s" line)

let recv_response sock dec =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Frame.next dec with
    | Some payload ->
      let r = Codec.Wire.reader_of_string payload in
      Frame.read_response r
    | None ->
      (match Unix.read sock buf 0 (Bytes.length buf) with
       | 0 -> fail "daemon closed the connection early"
       | k ->
         Frame.feed dec (Bytes.sub_string buf 0 k);
         go ())
  in
  go ()

(* One admin scrape over its own connection on the daemon's frame
   port: the first bytes being ASCII "GET " must hijack the connection
   into the HTTP responder. Reads to EOF (Connection: close). *)
let scrape port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
       ignore (Unix.write_substring fd req 0 (String.length req));
       let b = Buffer.create 1024 in
       let buf = Bytes.create 8192 in
       let rec go () =
         match Unix.read fd buf 0 (Bytes.length buf) with
         | 0 -> ()
         | k -> Buffer.add_subbytes b buf 0 k; go ()
         | exception Unix.Unix_error (e, _, _) ->
           fail "scrape %s died (%s) after %d bytes" path
             (Unix.error_message e) (Buffer.length b)
       in
       go ();
       Buffer.contents b)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let body_of resp =
  let rec find i =
    if i + 3 >= String.length resp then fail "no header/body boundary"
    else if String.sub resp i 4 = "\r\n\r\n" then i + 4
    else find (i + 1)
  in
  let i = find 0 in
  String.sub resp i (String.length resp - i)

let json_member key j =
  match Codec.Json.member key j with
  | Some v -> v
  | None -> fail "statusz JSON lacks key %S" key

let socket_leg daemon_exe =
  let total = 200 in
  let log_file = Filename.temp_file "chc_serve_smoke" ".jsonl" in
  let daemon_out =
    Unix.open_process_in
      (Filename.quote_command daemon_exe
         [ "listen"; "--port"; "0"; "--limit"; string_of_int total;
           "--log"; log_file; "--log-level"; "info" ])
  in
  let port = read_port daemon_out in
  Printf.printf "ok: daemon up on port %d\n%!" port;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let rng = Runtime.Rng.create 99 in
  let mix = Array.of_list Workload.default_mix in
  (* requests as the daemon sees them; the daemon-side job (crash-free,
     via job_of_request) is what the reference execution must run *)
  let requests =
    List.init total (fun id ->
        let shape = mix.(id mod Array.length mix) in
        let j = Workload.job ~rng ~id shape in
        Frame.Submit
          { id; n = shape.Workload.n; f = shape.Workload.f;
            d = shape.Workload.d; eps = Q.of_ints 1 100; lo = Q.zero;
            hi = Q.one; inputs = j.Server.inputs })
  in
  let jobs =
    List.map
      (fun req ->
         match Server.job_of_request req with
         | Ok j -> j
         | Error reason -> fail "smoke request rejected locally: %s" reason)
      requests
  in
  let send req =
    let b = Buffer.create 256 in
    Frame.write_request b req;
    let frame = Frame.encode_frame (Buffer.contents b) in
    let n = Unix.write_substring sock frame 0 (String.length frame) in
    if n <> String.length frame then fail "short write to daemon"
  in
  (* the daemon must answer every submission with a Decision, and the
     decided polytope must equal an in-process execution of the same
     instance (both sides are deterministic FIFO loopbacks) *)
  let dec = Frame.decoder () in
  let got = Hashtbl.create total in
  let read_responses k =
    for i = 1 to k do
      match recv_response sock dec with
      | Frame.Decision { id; output; _ } -> Hashtbl.replace got id output
      | Frame.Rejected { id; reason } ->
        fail "daemon rejected instance %d: %s" id reason
      | exception Unix.Unix_error (e, _, _) ->
        fail "frame read %d/%d (have %d): %s" i k (Hashtbl.length got)
          (Unix.error_message e)
    done
  in
  (* two submission waves with the admin scrapes between them: the
     daemon cannot reach --limit before wave 2 is even submitted, so
     every scrape provably answers while instances are being served *)
  let wave1, wave2 =
    List.partition (fun (Frame.Submit { id; _ }) -> id < total / 2) requests
  in
  List.iter send wave1;
  read_responses (total / 4);
  let metrics = scrape port "/metrics" in
  check "mid-run /metrics is 200"
    (contains ~sub:"HTTP/1.0 200 OK" metrics);
  List.iter
    (fun family ->
       check (Printf.sprintf "mid-run /metrics has %s" family)
         (contains ~sub:family metrics))
    [ "# TYPE chc_serve_instances_total counter";
      "chc_serve_decision_latency_seconds_bucket";
      "# TYPE chc_serve_violations_total counter";
      "chc_serve_inflight" ];
  List.iter send wave2;
  let statusz = scrape port "/statusz" in
  check "mid-run /statusz is 200"
    (contains ~sub:"HTTP/1.0 200 OK" statusz);
  check "second scrape counts the first"
    (contains ~sub:"chc_serve_admin_requests_total{endpoint=\"metrics\"}"
       (scrape port "/metrics"));
  (match Codec.Json.of_string (String.trim (body_of statusz)) with
   | Error e -> fail "statusz body does not parse: %s" e
   | Ok j ->
     List.iter
       (fun key -> ignore (json_member key j : Codec.Json.t))
       [ "uptime_s"; "shards"; "fuel"; "inflight"; "completed";
         "violations"; "decision_latency"; "shard"; "wal"; "memo"; "log" ];
     (match json_member "completed" j with
      | Codec.Json.Int c when c >= total / 4 -> ()
      | Codec.Json.Int c ->
        fail "statusz.completed = %d mid-run (< %d)" c (total / 4)
      | _ -> fail "statusz.completed is not an Int");
     check "statusz parses with all keys mid-run" true);
  let health = scrape port "/healthz" in
  check "mid-run /healthz is 200 ok"
    (contains ~sub:"HTTP/1.0 200 OK" health
     && contains ~sub:"\"status\":\"ok\"" (body_of health));
  read_responses (total - total / 4);
  Unix.close sock;
  (* drain the daemon's stdout to EOF (it must print the exit banner
     after serving --limit instances) before reaping it, so its final
     writes never race our side of the pipe closing *)
  let exited = ref false in
  (try
     while true do
       let line = input_line daemon_out in
       if contains ~sub:"instance(s) decided, exiting" line then
         exited := true
     done
   with End_of_file -> ());
  check "daemon printed its exit banner" !exited;
  (match Unix.close_process_in daemon_out with
   | Unix.WEXITED 0 -> ()
   | Unix.WEXITED c -> fail "daemon exited with %d" c
   | Unix.WSIGNALED s | Unix.WSTOPPED s -> fail "daemon killed by signal %d" s);
  check "all submissions answered" (Hashtbl.length got = total);
  let reference = Server.create ~shards:1 ~fuel:64 () in
  List.iter (Server.submit reference) jobs;
  let outcomes = Server.drain reference in
  List.iter
    (fun (o : Server.outcome) ->
       match Server.response_of_outcome o with
       | Frame.Decision { id; output; _ } ->
         (match Hashtbl.find_opt got id with
          | Some remote when Geometry.Polytope.equal remote output -> ()
          | Some _ -> fail "instance %d: socket and in-process decisions differ" id
          | None -> fail "instance %d never answered" id)
       | Frame.Rejected _ -> fail "reference execution rejected an instance")
    outcomes;
  Printf.printf "ok: %d socket decisions match in-process executions\n%!" total;
  (* every line of the daemon's structured log must be valid JSON with
     the envelope fields; the run must have logged decisions *)
  let ic = open_in log_file in
  let lines = ref 0 and decides = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       match Codec.Json.of_string line with
       | Error e -> fail "log line %d is not JSON (%s): %s" !lines e line
       | Ok j ->
         List.iter
           (fun key -> ignore (json_member key j : Codec.Json.t))
           [ "ts_ns"; "level"; "event" ];
         if Codec.Json.member "event" j = Some (Codec.Json.Str "decide")
         then incr decides
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove log_file;
  check
    (Printf.sprintf "daemon log: %d JSONL lines, %d decide events"
       !lines !decides)
    (!lines >= total && !decides = total)

let () =
  in_process ();
  metric_families ();
  if Array.length Sys.argv > 1 then
    (* dune passes the daemon path relative to the rule's cwd; make it
       absolute so the shell spawning it does not consult PATH *)
    let daemon =
      if Filename.is_relative Sys.argv.(1) then
        Filename.concat (Sys.getcwd ()) Sys.argv.(1)
      else Sys.argv.(1)
    in
    socket_leg daemon
  else print_endline "note: no daemon path given, socket leg skipped";
  print_endline "serve smoke: all checks passed"
