(* Serving-daemon smoke pass (dune build @serve-smoke, part of @ci):

   1. 200 mixed instances — the E15 workload shapes, including
      crash-recovery ones — through an in-process server, every
      decision graded against Theorem 2 on the spot;
   2. the Prometheus exposition must contain every chc_serve metric
      family the daemon advertises;
   3. when handed the daemon binary (argv 1), a real-socket leg: spawn
      [chc_serve listen] on an ephemeral port, submit instances as
      length-prefixed frames over TCP, and check the Decision
      responses against an in-process re-execution of the same
      inputs. *)

module Q = Numeric.Q
module Frame = Serve.Frame
module Server = Serve.Server
module Workload = Serve.Workload

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let check name b = if not b then fail "%s" name else Printf.printf "ok: %s\n%!" name

(* --- leg 1: in-process workload -------------------------------------- *)

let in_process () =
  let server = Server.create ~fuel:64 () in
  let rng = Runtime.Rng.create 77 in
  let phase =
    Workload.closed_loop ~server ~rng ~mix:Workload.default_mix
      ~label:"smoke" ~first_id:0 ~concurrency:64 ~total:200
  in
  check "200 mixed instances decided" (phase.Workload.instances = 200);
  (match phase.Workload.grade_failures with
   | [] -> Printf.printf "ok: Theorem 2 holds for all 200 (%.1f inst/s)\n%!"
             phase.Workload.throughput_ips
   | msg :: _ ->
     fail "%d Theorem 2 violation(s), first: %s"
       (List.length phase.Workload.grade_failures) msg)

(* --- leg 2: metric families ------------------------------------------ *)

let metric_families () =
  (* touch the frame codec so its counter families exist too *)
  let dec = Frame.decoder () in
  Frame.feed dec (Frame.encode_frame "probe");
  (match Frame.next dec with
   | Some "probe" -> ()
   | _ -> fail "frame probe did not round-trip");
  let exposition = Obs.Metrics.exposition_all () in
  List.iter
    (fun family ->
       let found =
         let flen = String.length family and elen = String.length exposition in
         let rec scan i =
           i + flen <= elen
           && (String.sub exposition i flen = family || scan (i + 1))
         in
         scan 0
       in
       check (Printf.sprintf "exposition contains %s" family) found)
    [ "chc_serve_instances_total"; "chc_serve_inflight";
      "chc_serve_throughput_ips"; "chc_serve_decision_latency_seconds";
      "chc_serve_frames_total"; "chc_serve_frame_bytes_total" ]

(* --- leg 3: the daemon over a real socket ----------------------------- *)

let read_port daemon_out =
  (* first line: "chc_serve: listening on 127.0.0.1:PORT (...)" *)
  let line = input_line daemon_out in
  match String.rindex_opt line ':' with
  | None -> fail "cannot parse daemon banner: %s" line
  | Some i ->
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    (match int_of_string_opt (List.hd (String.split_on_char ' ' rest)) with
     | Some p -> p
     | None -> fail "cannot parse port from banner: %s" line)

let recv_response sock dec =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Frame.next dec with
    | Some payload ->
      let r = Codec.Wire.reader_of_string payload in
      Frame.read_response r
    | None ->
      (match Unix.read sock buf 0 (Bytes.length buf) with
       | 0 -> fail "daemon closed the connection early"
       | k ->
         Frame.feed dec (Bytes.sub_string buf 0 k);
         go ())
  in
  go ()

let socket_leg daemon_exe =
  let total = 10 in
  let daemon_out =
    Unix.open_process_in
      (Filename.quote_command daemon_exe
         [ "listen"; "--port"; "0"; "--limit"; string_of_int total ])
  in
  let port = read_port daemon_out in
  Printf.printf "ok: daemon up on port %d\n%!" port;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let rng = Runtime.Rng.create 99 in
  let shape = { Workload.n = 5; f = 1; d = 2; recover = false } in
  let jobs = List.init total (fun id -> Workload.job ~rng ~id shape) in
  List.iter
    (fun (j : Server.job) ->
       let b = Buffer.create 256 in
       Frame.write_request b
         (Frame.Submit
            { id = j.Server.id; n = 5; f = 1; d = 2;
              eps = Q.of_ints 1 100; lo = Q.zero; hi = Q.one;
              inputs = j.Server.inputs });
       let frame = Frame.encode_frame (Buffer.contents b) in
       let n = Unix.write_substring sock frame 0 (String.length frame) in
       if n <> String.length frame then fail "short write to daemon")
    jobs;
  (* the daemon must answer every submission with a Decision, and the
     decided polytope must equal an in-process execution of the same
     instance (both sides are deterministic FIFO loopbacks) *)
  let dec = Frame.decoder () in
  let got = Hashtbl.create total in
  for _ = 1 to total do
    match recv_response sock dec with
    | Frame.Decision { id; output; _ } -> Hashtbl.replace got id output
    | Frame.Rejected { id; reason } ->
      fail "daemon rejected instance %d: %s" id reason
  done;
  Unix.close sock;
  (match Unix.close_process_in daemon_out with
   | Unix.WEXITED 0 -> ()
   | Unix.WEXITED c -> fail "daemon exited with %d" c
   | Unix.WSIGNALED s | Unix.WSTOPPED s -> fail "daemon killed by signal %d" s);
  check "all submissions answered" (Hashtbl.length got = total);
  let reference = Server.create ~shards:1 ~fuel:64 () in
  List.iter (Server.submit reference) jobs;
  let outcomes = Server.drain reference in
  List.iter
    (fun (o : Server.outcome) ->
       match Server.response_of_outcome o with
       | Frame.Decision { id; output; _ } ->
         (match Hashtbl.find_opt got id with
          | Some remote when Geometry.Polytope.equal remote output -> ()
          | Some _ -> fail "instance %d: socket and in-process decisions differ" id
          | None -> fail "instance %d never answered" id)
       | Frame.Rejected _ -> fail "reference execution rejected an instance")
    outcomes;
  Printf.printf "ok: %d socket decisions match in-process executions\n%!" total

let () =
  in_process ();
  metric_families ();
  if Array.length Sys.argv > 1 then
    (* dune passes the daemon path relative to the rule's cwd; make it
       absolute so the shell spawning it does not consult PATH *)
    let daemon =
      if Filename.is_relative Sys.argv.(1) then
        Filename.concat (Sys.getcwd ()) Sys.argv.(1)
      else Sys.argv.(1)
    in
    socket_leg daemon
  else print_endline "note: no daemon path given, socket leg skipped";
  print_endline "serve smoke: all checks passed"
