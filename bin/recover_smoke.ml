(* CI smoke pass for crash-recovery durability.

   Three checks:

   1. Recovered executions are deterministic and pool-size invariant:
      a fixed scenario with a crash-recover plan produces byte-identical
      JSONL transcripts (and identical decisions) with the global pool
      at 1 and at 4 domains, and every paper property holds with the
      recovered process graded as correct.

   2. The WAL round-trips: every surviving log entry re-parses from its
      canonical JSON line to an equal event.

   3. Teeth: with the deliberately broken [Unsound] sync mode and a
      crash landing after the victim decided, the oracle must catch the
      durability violation (a recovered process re-deciding a different
      polytope — or any downstream property failure), and the shrinker
      must produce a smaller scenario that still fails. A durability
      fuzzer that passes everything under a no-op sync has no teeth. *)

module Q = Numeric.Q
module Crash = Runtime.Crash
module Scenario = Chc.Scenario
module Executor = Chc.Executor

let failures = ref 0

let check name ok =
  if ok then Printf.printf "  ok: %s\n" name
  else begin
    incr failures;
    Printf.printf "  FAIL: %s\n" name
  end

(* --- 1: recovered executions are deterministic ----------------------- *)

let recovery_spec () =
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 5) ~lo:Q.zero ~hi:Q.one
  in
  let rng = Runtime.Rng.create 11 in
  let inputs = Scenario.random_inputs ~config ~rng () in
  let crash = Array.make 5 Crash.Never in
  crash.(0) <-
    Crash.Crash_recover { trigger = Crash.Sends 9; delay = 12; keep = 1 };
  Scenario.make ~config ~inputs ~crash
    ~scheduler:Runtime.Scheduler.random_uniform ~seed:7 ()

let traced_run spec =
  let trace = Obs.Trace.create () in
  let r = Executor.run ~trace spec in
  (r, Obs.Trace.to_jsonl trace)

let check_determinism () =
  print_endline "determinism under recovery:";
  let spec = recovery_spec () in
  Parallel.Pool.set_global_size 1;
  let r1, t1 = traced_run spec in
  Parallel.Pool.set_global_size 4;
  let r4, t4 = traced_run spec in
  check "recovered-run traces byte-identical across pool sizes 1 and 4"
    (String.equal t1 t4);
  check "trace is non-trivial" (String.length t1 > 1000);
  check "process 0 recovered" (r1.Executor.recovered = [ 0 ]);
  check "all properties hold on the recovered execution"
    (r1.Executor.terminated && r1.Executor.valid && r1.Executor.agreement_ok
     && r1.Executor.optimal && r1.Executor.decision_stable);
  check "decisions identical across pool sizes"
    (Array.for_all2
       (fun a b ->
          match a, b with
          | None, None -> true
          | Some p, Some q -> Geometry.Polytope.equal p q
          | _ -> false)
       r1.Executor.result.Chc.Cc.outputs r4.Executor.result.Chc.Cc.outputs);
  let recoveries =
    r1.Executor.result.Chc.Cc.metrics.Runtime.Sim.recoveries
  in
  check "simulator counted exactly one revival" (recoveries = 1);
  (r1, spec)

(* --- 2: the surviving WAL round-trips through its codec -------------- *)

let check_wal_roundtrip (r : Executor.report) spec =
  print_endline "wal codec round-trip:";
  let dim = spec.Executor.config.Chc.Config.d in
  let total = ref 0 in
  let bad = ref 0 in
  Array.iter
    (List.iter (fun ev ->
         incr total;
         let line = Chc.Recovery.event_to_string ev in
         match Chc.Recovery.event_of_string ~dim line with
         | Ok ev' when Chc.Recovery.event_to_string ev' = line -> ()
         | _ -> incr bad))
    r.Executor.result.Chc.Cc.wal_log;
  check
    (Printf.sprintf "all %d surviving log entries round-trip" !total)
    (!total > 0 && !bad = 0)

(* --- 3: the oracle has teeth against unsound sync --------------------- *)

(* A scenario built to expose the no-op sync. Two ingredients are both
   necessary:

   - Heterogeneous round-0 views: an early crash-stop process whose
     partial broadcast splits the other processes' stable-vector views.
     Without it every process computes the identical round-0 polytope,
     all later values coincide exactly, and a from-genesis replay
     re-derives the same decision no matter what the adversary lost.

   - A post-decide crash on the victim: the [Receives] budget must land
     AFTER the victim externalizes. We probe a run with the stopper
     active but the victim unharmed to learn the victim's receive
     total, then aim just under it ([Scenario.ensure_crashes] can't do
     this — its probe is crash-free, so the stopper's death makes its
     clamp unreachable).

   With both, [Unsound] sync + [keep = 0] loses the whole log; the
   rejoin re-derives the decision from the responders' final views,
   which generically differ from what the victim originally froze —
   a different exact polytope. Agreement still passes (the drift is
   within eps), so only the durability check catches it. *)
let unsound_spec ~seed ~back ~stopper =
  let config =
    Chc.Config.make ~n:7 ~f:2 ~d:1 ~eps:(Q.of_ints 1 5) ~lo:Q.zero ~hi:Q.one
  in
  let rng = Runtime.Rng.create seed in
  let inputs = Scenario.random_inputs ~config ~rng () in
  let crash = Array.make 7 Crash.Never in
  crash.(1) <- Crash.After_sends stopper;
  let probe =
    Chc.Cc.execute ~config ~inputs ~crash
      ~scheduler:Runtime.Scheduler.random_uniform ~seed ()
  in
  let r0 = probe.Chc.Cc.receives_seen.(0) in
  crash.(0) <-
    Crash.Crash_recover
      { trigger = Crash.Receives (max 0 (r0 - 1 - back)); delay = 0; keep = 0 };
  Scenario.make ~config ~inputs ~crash
    ~scheduler:Runtime.Scheduler.random_uniform ~seed
    ~wal:{ Runtime.Wal.checkpoint_every = 4; sync = Runtime.Wal.Unsound }
    ()

let check_teeth () =
  print_endline "oracle teeth vs unsound sync:";
  let oracle = Fuzz.Oracle.Paper_properties in
  let found = ref None in
  let seeds = List.init 10 (fun i -> i + 1) in
  List.iter
    (fun seed ->
       if !found = None then
         List.iter
           (fun stopper ->
              if !found = None then begin
                let t = unsound_spec ~seed ~back:0 ~stopper in
                match Fuzz.Oracle.check oracle t with
                | Fuzz.Oracle.Fail msg -> found := Some (t, msg)
                | Fuzz.Oracle.Pass -> ()
              end)
           [ 2; 3; 4; 5 ])
    seeds;
  match !found with
  | None ->
    check "unsound sync produces an oracle violation" false
  | Some (t, msg) ->
    Printf.printf "  found: %s\n" msg;
    check "unsound sync produces an oracle violation" true;
    (* Specifically the durability property: agreement stays within
       eps here, so a fuzzer without the stability check would have
       graded this run clean. *)
    let is_durability =
      String.length msg >= 10 && String.sub msg 0 10 = "durability"
    in
    check "violation is the durability property, not a masked proxy"
      is_durability;
    (* The shrinker must keep it failing. *)
    let minimized, stats = Fuzz.Shrink.minimize ~oracle t in
    let still_fails =
      match Fuzz.Oracle.check oracle minimized with
      | Fuzz.Oracle.Fail _ -> true
      | Fuzz.Oracle.Pass -> false
    in
    check
      (Printf.sprintf "shrinker keeps the violation (%d steps, %d attempts)"
         stats.Fuzz.Shrink.steps stats.Fuzz.Shrink.attempts)
      still_fails;
    (* And the artifact must round-trip through the v2 codec. *)
    (match Scenario.of_string (Scenario.to_string minimized) with
     | Ok t' ->
       check "minimized scenario round-trips (v2 codec)"
         (Scenario.equal minimized t')
     | Error e ->
       Printf.printf "  codec error: %s\n" (Scenario.error_to_string e);
       check "minimized scenario round-trips (v2 codec)" false)

let () =
  Fuzz.Strategies.register_builtin ();
  print_endline "recover_smoke:";
  let r, spec = check_determinism () in
  check_wal_roundtrip r spec;
  check_teeth ();
  if !failures > 0 then begin
    Printf.printf "recover_smoke: %d check(s) FAILED\n" !failures;
    exit 1
  end
  else print_endline "recover_smoke: all checks passed"
