(* CI smoke pass for the observability layer.

   Three checks on one n=6/f=1/d=3 configuration:

   1. Profiler-off determinism — with spans disabled, the recorded
      trace (the tier-1 replay artifact) is byte-identical whether the
      global pool has 1 domain or 4. Timing must never leak into the
      deterministic transcript.

   2. The profiled run emits well-formed Chrome trace-event JSON:
      every begin has a matching end, nesting depth never goes
      negative, per-track timestamps are non-decreasing, and the
      begin/end counts equal the profiler's own span count.

   3. The metrics registry saw the run: the exposition carries the
      memo, pool and wire families.

   Perfetto [ts] fields are microseconds with exactly three decimals
   ("%.3f"), while Codec.Json deliberately rejects floats to keep the
   artifact codec exact. Deleting every '.' outside string literals
   rescales each ts losslessly to an integer (ns) and changes nothing
   else — span names keep their dots because they sit inside strings —
   so the strict exact parser can then validate the document. *)

let failures = ref 0

let check name ok =
  if ok then Printf.printf "  ok: %s\n" name
  else begin
    incr failures;
    Printf.printf "  FAIL: %s\n" name
  end

let spec () =
  let config =
    Chc.Config.make ~n:6 ~f:1 ~d:3
      ~eps:(Numeric.Q.of_ints 1 2) ~lo:Numeric.Q.zero ~hi:Numeric.Q.one
  in
  Chc.Executor.default_spec ~config ~seed:42 ()

let traced_jsonl () =
  let trace = Obs.Trace.create () in
  ignore (Chc.Executor.run ~trace (spec ()));
  Obs.Trace.to_jsonl trace

(* --- 1: profiler-off runs are pool-size invariant ------------------- *)

let check_determinism () =
  Parallel.Pool.set_global_size 1;
  let one = traced_jsonl () in
  Parallel.Pool.set_global_size 4;
  let four = traced_jsonl () in
  check "profiler-off traces byte-identical across pool sizes 1 and 4"
    (String.equal one four);
  check "trace is non-trivial" (String.length one > 1000)

(* --- 2: profiled run emits valid, balanced Perfetto JSON ------------- *)

(* Delete '.' everywhere except inside string literals. *)
let strip_dots s =
  let b = Buffer.create (String.length s) in
  let in_string = ref false in
  let escaped = ref false in
  String.iter
    (fun c ->
       let keep =
         if !in_string then begin
           (if !escaped then escaped := false
            else match c with
              | '\\' -> escaped := true
              | '"' -> in_string := false
              | _ -> ());
           true
         end
         else begin
           (match c with '"' -> in_string := true | _ -> ());
           c <> '.'
         end
       in
       if keep then Buffer.add_char b c)
    s;
  Buffer.contents b

let validate_chrome_json json expected_spans =
  match Codec.Json.of_string (strip_dots json) with
  | Error e -> check (Printf.sprintf "trace JSON parses (%s)" e) false
  | Ok (Codec.Json.List events) ->
    check "trace JSON parses" true;
    let begins = ref 0 and ends = ref 0 in
    let depth : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let last_ts : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let shape_ok = ref true and balance_ok = ref true in
    let ts_ok = ref true in
    List.iter
      (fun ev ->
         match
           ( Codec.Json.str_field "ph" ev,
             Codec.Json.int_field "tid" ev,
             Codec.Json.int_field "ts" ev )
         with
         | Ok ph, Ok tid, Ok ts ->
           let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
           (match ph with
            | "B" ->
              incr begins;
              if Codec.Json.member "name" ev = None then shape_ok := false;
              Hashtbl.replace depth tid (d + 1)
            | "E" ->
              incr ends;
              if d <= 0 then balance_ok := false;
              Hashtbl.replace depth tid (d - 1)
            | _ -> shape_ok := false);
           let prev = Option.value ~default:min_int (Hashtbl.find_opt last_ts tid) in
           if ts < prev then ts_ok := false;
           Hashtbl.replace last_ts tid ts
         | _ -> shape_ok := false)
      events;
    check "every event has ph/tid/ts (and B events a name)" !shape_ok;
    check
      (Printf.sprintf "begin/end counts match span count (%d B, %d E, %d spans)"
         !begins !ends expected_spans)
      (!begins = expected_spans && !ends = expected_spans);
    check "no end without a matching begin" !balance_ok;
    check "all tracks end at depth 0"
      (Hashtbl.fold (fun _ d acc -> acc && d = 0) depth true);
    check "per-track timestamps are non-decreasing" !ts_ok
  | Ok _ -> check "trace JSON is an event array" false

let check_profiled_run () =
  Obs.Prof.reset ();
  Obs.Prof.set_enabled true;
  let report = Chc.Executor.run (spec ()) in
  Obs.Prof.set_enabled false;
  let spans = Obs.Prof.span_count () in
  let json = Obs.Prof.to_chrome_json () in
  Obs.Prof.reset ();
  check "profiled execution terminates" report.Chc.Executor.terminated;
  check (Printf.sprintf "profiler recorded spans (%d)" spans) (spans > 100);
  validate_chrome_json json spans

(* --- 3: metrics registry saw the run --------------------------------- *)

let check_metrics () =
  let expo = Obs.Metrics.exposition_all () in
  let has sub =
    let n = String.length expo and m = String.length sub in
    let rec go i =
      i + m <= n && (String.sub expo i m = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun family -> check (Printf.sprintf "exposition has %s" family) (has family))
    [ "chc_memo_hits_total"; "chc_pool_size"; "chc_wire_polytope_bytes" ]

let () =
  print_endline "profile-smoke: observability CI checks (n=6 f=1 d=3, seed 42)";
  check_determinism ();
  check_profiled_run ();
  check_metrics ();
  if !failures > 0 then begin
    Printf.printf "profile-smoke: %d check(s) FAILED\n" !failures;
    exit 1
  end;
  print_endline "profile-smoke: all checks passed"
