(* chc_serve — the sharded multi-instance consensus daemon.

   One daemon multiplexes thousands of concurrent Algorithm CC
   instances, each over its own deterministic FIFO loopback, sharded
   across domains by the parallel pool (see lib/serve).

   Examples:
     dune exec bin/chc_serve.exe -- drive --instances 500 --concurrency 128
     dune exec bin/chc_serve.exe -- drive --wal-dir /tmp/chcwal --instances 50
     dune exec bin/chc_serve.exe -- resume --wal-dir /tmp/chcwal
     dune exec bin/chc_serve.exe -- listen --port 7465 --limit 100
     curl 127.0.0.1:7465/metrics      # admin plane, same port
     dune exec bin/chc_serve.exe -- listen --admin-port 9465 *)

open Cmdliner

module Cli = Chc.Cli
module Frame = Serve.Frame
module Admin = Serve.Admin
module Server = Serve.Server
module Workload = Serve.Workload

let with_modes kernel poly k =
  match Cli.set_kernel kernel with
  | Error msg -> `Error (false, msg)
  | Ok () ->
    (match Cli.set_poly poly with
     | Error msg -> `Error (false, msg)
     | Ok () -> k ())

(* --- shared daemon flags --------------------------------------------- *)

let shards_arg =
  Arg.(value & opt (some int) None
       & info ["shards"] ~docv:"K"
           ~doc:"Number of instance shards, each pumped by one domain-pool \
                 task per round (default: the pool size, CHC_DOMAINS).")

let fuel_arg =
  Arg.(value & opt int 64
       & info ["fuel"] ~docv:"MSGS"
           ~doc:"Messages delivered per instance per pump round — the \
                 per-instance latency vs cross-instance fairness dial.")

let wal_dir_arg =
  Arg.(value & opt (some string) None
       & info ["wal-dir"] ~docv:"DIR"
           ~doc:"Arm durability: every instance writes per-process WALs, \
                 a scenario file and a completion marker under \
                 $(docv)/inst-<id>/; a restarted daemon resumes the \
                 unfinished ones ($(b,chc_serve resume)).")

let metrics_arg =
  Arg.(value & flag
       & info ["metrics"]
           ~doc:"Print the Prometheus exposition of the full metrics \
                 registry when done.")

let print_metrics () = print_string (Obs.Metrics.exposition_all ())

let print_phase (p : Workload.phase) =
  Printf.printf
    "%-12s %6d instances  %7.2fs  %8.1f inst/s  p50 %6.1fms  p99 %6.1fms  \
     max %6.1fms  inflight<=%d\n"
    p.Workload.label p.Workload.instances p.Workload.wall_s
    p.Workload.throughput_ips
    (p.Workload.latency_p50_s *. 1e3)
    (p.Workload.latency_p99_s *. 1e3)
    (p.Workload.latency_max_s *. 1e3)
    p.Workload.max_inflight;
  List.iter (fun msg -> Printf.printf "  GRADE FAIL %s\n" msg)
    p.Workload.grade_failures

(* --- telemetry flags (log / profile / tracing), shared by every
   subcommand ----------------------------------------------------------- *)

type telem = {
  log_file : string option;
  log_level : string;
  log_rate : int option;
  slow_ms : int;
  profile_out : string option;
  causal_k : int;
}

let telem_term =
  let log_file =
    Arg.(value & opt (some string) None
         & info ["log"] ~docv:"FILE"
             ~doc:"Write structured JSONL logs (one JSON object per line) \
                   to $(docv), appending. Arms logging at --log-level.")
  in
  let log_level =
    Arg.(value & opt string "info"
         & info ["log-level"] ~docv:"LVL"
             ~doc:"Minimum level routed to --log: off, debug, info, warn \
                   or error. Without --log this flag is inert (logging \
                   stays disabled).")
  in
  let log_rate =
    Arg.(value & opt (some int) None
         & info ["log-rate"] ~docv:"N"
             ~doc:"Token-bucket rate limit: at most $(docv) log lines per \
                   second sustained (burst $(docv)); over-budget lines are \
                   dropped and counted (default 1000).")
  in
  let slow_ms =
    Arg.(value & opt int 1000
         & info ["slow-ms"] ~docv:"MS"
             ~doc:"Submit-to-decision latency above which an instance \
                   earns a warn-level slow_request log line.")
  in
  let profile_out =
    Arg.(value & opt (some string) None
         & info ["profile-out"] ~docv:"FILE"
             ~doc:"Enable the span profiler and write a Chrome \
                   trace-event / Perfetto JSON profile to $(docv) on \
                   exit; per-job slices land on one track per instance \
                   id. With --causal-k, critical-path sidecars go to \
                   $(docv).causal-<id>.json.")
  in
  let causal_k =
    Arg.(value & opt int 0
         & info ["causal-k"] ~docv:"K"
             ~doc:"Record per-job event traces and keep the $(docv) \
                   slowest jobs' traces; their happens-before critical \
                   paths are reported on exit (and written as JSON \
                   sidecars with --profile-out).")
  in
  Term.(const (fun log_file log_level log_rate slow_ms profile_out causal_k
                -> { log_file; log_level; log_rate; slow_ms; profile_out;
                     causal_k })
        $ log_file $ log_level $ log_rate $ slow_ms $ profile_out
        $ causal_k)

(* Arm logging/profiling per the flags; returns Error on a bad level.
   The daemon flushes the log between pump rounds; [teardown] drains
   whatever is left, dumps the profile and the causal sidecars. *)
let telem_setup t =
  match Obs.Log.level_of_string t.log_level with
  | Error msg -> Error ("--log-level: " ^ msg)
  | Ok lvl ->
    (match t.log_file with
     | None -> ()
     | Some path ->
       Obs.Log.open_file ~path;
       (match t.log_rate with
        | None -> ()
        | Some n -> Obs.Log.set_rate ~per_s:n ~burst:n);
       Obs.Log.set_level lvl);
    if t.profile_out <> None then Obs.Prof.set_enabled true;
    Ok ()

let telem_teardown t server =
  (match t.profile_out with
   | None ->
     if t.causal_k > 0 then
       List.iter
         (fun (id, latency_s, causal) ->
            Printf.printf
              "slowest: instance %-6d %.1fms  critical chain %d hop(s)\n"
              id (latency_s *. 1e3)
              (Obs.Causal.max_chain_length causal))
         (Server.slowest server)
   | Some path ->
     Obs.Prof.set_enabled false;
     let write path body =
       match Obs.Sink.write_string ~path body with
       | Ok () -> true
       | Error msg ->
         Printf.eprintf "chc_serve: %s\n%!" msg;
         false
     in
     if write path (Obs.Prof.to_chrome_json ()) then
       Printf.printf "chc_serve: profile (%d spans) written to %s\n"
         (Obs.Prof.span_count ()) path;
     List.iter
       (fun (id, _, causal) ->
          let spath = Printf.sprintf "%s.causal-%d.json" path id in
          if write spath (Obs.Causal.to_json causal) then
            Printf.printf "chc_serve: critical path of instance %d in %s\n"
              id spath)
       (Server.slowest server));
  if t.log_file <> None then Obs.Log.close ();
  Obs.Log.set_level None

let slow_s_of t = float_of_int t.slow_ms /. 1000.

(* --- periodic metrics exposition (drive / resume) --------------------- *)

let metrics_every_arg =
  Arg.(value & opt (some int) None
       & info ["metrics-every"] ~docv:"N"
           ~doc:"Every $(docv) pump rounds, write the full Prometheus \
                 exposition to --metrics-out (atomic replace — a \
                 textfile-collector snapshot).")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info ["metrics-out"] ~docv:"FILE"
           ~doc:"Destination snapshot file for --metrics-every.")

(* The per-pump hook: flush buffered log lines, and every [n] pumps
   snapshot the metrics registry. *)
let make_on_pump ~metrics_every ~metrics_out =
  let pumps = ref 0 in
  fun () ->
    incr pumps;
    Obs.Log.flush ();
    match (metrics_every, metrics_out) with
    | Some n, Some path when n > 0 && !pumps mod n = 0 ->
      (match Obs.Sink.write_string ~path (Obs.Metrics.exposition_all ()) with
       | Ok () -> ()
       | Error msg -> Printf.eprintf "chc_serve: metrics-out: %s\n%!" msg)
    | _ -> ()

let check_metrics_every ~metrics_every ~metrics_out k =
  match (metrics_every, metrics_out) with
  | Some _, None -> `Error (false, "--metrics-every needs --metrics-out")
  | Some n, Some _ when n < 1 -> `Error (false, "--metrics-every: must be >= 1")
  | _ -> k ()

(* --- drive: in-process synthetic workload ---------------------------- *)

let instances_arg =
  Arg.(value & opt int 200
       & info ["instances"] ~docv:"K"
           ~doc:"Consensus instances to complete.")

let concurrency_arg =
  Arg.(value & opt int 64
       & info ["concurrency"] ~docv:"K"
           ~doc:"Instances held in flight (closed-loop).")

let drive_cmd kernel poly seed shards fuel wal_dir metrics telem metrics_every
    metrics_out instances concurrency =
  with_modes kernel poly @@ fun () ->
  if instances < 1 then `Error (false, "--instances: must be >= 1")
  else if concurrency < 1 then `Error (false, "--concurrency: must be >= 1")
  else
    check_metrics_every ~metrics_every ~metrics_out @@ fun () ->
    match telem_setup telem with
    | Error msg -> `Error (false, msg)
    | Ok () ->
      let server =
        Server.create ?shards ~fuel ~slow_s:(slow_s_of telem)
          ~causal_k:telem.causal_k ?wal_dir ()
      in
      Printf.printf
        "chc_serve drive: %d instances, concurrency %d, %d shard(s), fuel %d%s\n%!"
        instances concurrency (Server.shards server) fuel
        (match wal_dir with None -> "" | Some d -> ", wal " ^ d);
      let rng = Runtime.Rng.create seed in
      let phase =
        Workload.closed_loop
          ~on_pump:(make_on_pump ~metrics_every ~metrics_out)
          ~server ~rng ~mix:Workload.default_mix
          ~label:"closed" ~first_id:0 ~concurrency ~total:instances ()
      in
      print_phase phase;
      telem_teardown telem server;
      if metrics then print_metrics ();
      if phase.Workload.grade_failures = [] then `Ok ()
      else `Error (false, "Theorem 2 violations under load (see above)")

let drive_term =
  Term.(ret
          (const drive_cmd $ Cli.kernel_arg $ Cli.poly_arg $ Cli.seed_arg
           $ shards_arg
           $ fuel_arg $ wal_dir_arg $ metrics_arg $ telem_term
           $ metrics_every_arg $ metrics_out_arg $ instances_arg
           $ concurrency_arg))

let drive_info =
  Cmd.info "drive"
    ~doc:"Run a synthetic closed-loop workload through an in-process daemon."
    ~man:
      [ `S Manpage.s_description;
        `P "Submits a deterministic mix of problem shapes — including \
            crash-recovery instances — keeps --concurrency of them in \
            flight until --instances have decided, grades every decision \
            against the paper's Theorem 2 properties on the spot, and \
            prints throughput and decision-latency percentiles. Exit \
            status is non-zero iff any instance violated a property." ]

(* --- resume: restart recovery from a WAL directory -------------------- *)

let resume_cmd kernel poly shards fuel wal_dir metrics telem metrics_every
    metrics_out =
  with_modes kernel poly @@ fun () ->
  match wal_dir with
  | None -> `Error (false, "--wal-dir is required for resume")
  | Some dir ->
    check_metrics_every ~metrics_every ~metrics_out @@ fun () ->
    match telem_setup telem with
    | Error msg -> `Error (false, msg)
    | Ok () ->
      let pending = Server.scan_wal ~wal_dir:dir in
      Printf.printf "chc_serve resume: %d unfinished instance(s) under %s\n%!"
        (List.length pending) dir;
      if pending = [] then `Ok ()
      else begin
        let server =
          Server.create ?shards ~fuel ~slow_s:(slow_s_of telem)
            ~causal_k:telem.causal_k ~wal_dir:dir ()
        in
        List.iter
          (fun (job, entries) -> Server.submit server ~resume:entries job)
          pending;
        let on_pump = make_on_pump ~metrics_every ~metrics_out in
        let outcomes = ref [] in
        while Server.inflight server > 0 do
          outcomes := List.rev_append (Server.pump server) !outcomes;
          on_pump ()
        done;
        let outcomes = List.rev !outcomes in
        let failures =
          List.filter_map
            (fun o ->
               match Server.grade_count server o with
               | Ok () -> None
               | Error msg ->
                 Some
                   (Printf.sprintf "instance %d: %s" o.Server.job.Server.id
                      msg))
            outcomes
        in
        List.iter
          (fun o ->
             Printf.printf "instance %-6d decided after resume (t_end %d%s)\n"
               o.Server.job.Server.id o.Server.t_end
               (if o.Server.recovered = [] then ""
                else
                  Printf.sprintf ", recovered {%s}"
                    (String.concat ","
                       (List.map string_of_int o.Server.recovered))))
          outcomes;
        telem_teardown telem server;
        if metrics then print_metrics ();
        match failures with
        | [] -> `Ok ()
        | msgs -> `Error (false, String.concat "\n" msgs)
      end

let resume_term =
  Term.(ret
          (const resume_cmd $ Cli.kernel_arg $ Cli.poly_arg $ shards_arg
           $ fuel_arg
           $ wal_dir_arg $ metrics_arg $ telem_term $ metrics_every_arg
           $ metrics_out_arg))

let resume_info =
  Cmd.info "resume"
    ~doc:"Finish instances a killed daemon left behind in its WAL directory."
    ~man:
      [ `S Manpage.s_description;
        `P "Scans --wal-dir for inst-<id> directories without a completion \
            marker, reloads each process's surviving write-ahead log, and \
            resubmits the instances through the crash-recovery rejoin path \
            (log replay with muted sends, then rejoin). Decisions are \
            graded against Theorem 2 before the daemon exits." ]

(* --- listen: the socket front-end ------------------------------------- *)

let port_arg =
  Arg.(value & opt int 7465
       & info ["port"] ~docv:"PORT"
           ~doc:"TCP port on 127.0.0.1 (0 picks an ephemeral port, \
                 printed on startup).")

let admin_port_arg =
  Arg.(value & opt (some int) None
       & info ["admin-port"] ~docv:"PORT"
           ~doc:"Also serve the admin endpoint (/metrics /healthz \
                 /statusz) on a dedicated 127.0.0.1 port (0: ephemeral, \
                 printed on startup). The main --port answers admin GETs \
                 either way.")

let limit_arg =
  Arg.(value & opt int 0
       & info ["limit"] ~docv:"K"
           ~doc:"Exit after deciding this many instances (0: run until \
                 killed). Lets tests and benchmarks drive a bounded \
                 session over a real socket.")

(* Write a whole frame; false if the client vanished mid-write. *)
let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off >= len then true
    else
      match Unix.write_substring fd s off (len - off) with
      | 0 -> false
      | k -> go (off + k)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        false
  in
  go 0

(* A fresh connection on the frame port is either a frame client or an
   admin scraper — decided by its first bytes ({!Admin.looks_like_http}:
   an ASCII method name can never begin a LEB128-framed stream). *)
type client_state =
  | Fresh
  | Frames of Frame.decoder
  | Http of Admin.conn

let listen_cmd kernel poly shards fuel wal_dir telem port admin_port limit =
  with_modes kernel poly @@ fun () ->
  match telem_setup telem with
  | Error msg -> `Error (false, msg)
  | Ok () ->
    let server =
      Server.create ?shards ~fuel ~slow_s:(slow_s_of telem)
        ~causal_k:telem.causal_k ?wal_dir ()
    in
    let admin_src = Server.admin_source server in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen sock 64;
    let actual_port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    Printf.printf
      "chc_serve: listening on 127.0.0.1:%d (%d shard(s), fuel %d)\n%!"
      actual_port (Server.shards server) fuel;
    let admin =
      Option.map (fun p -> Admin.create ~port:p admin_src) admin_port
    in
    (match admin with
     | Some a ->
       Printf.printf
         "chc_serve: admin on 127.0.0.1:%d (/metrics /healthz /statusz)\n%!"
         (Admin.port a)
     | None ->
       Printf.printf
         "chc_serve: admin GETs (/metrics /healthz /statusz) answered on \
          port %d\n%!"
         actual_port);
    let clients : (Unix.file_descr, client_state) Hashtbl.t =
      Hashtbl.create 16
    in
    (* instance id -> the connection that submitted it; a response for a
       vanished client is dropped (the WAL, if armed, still records the
       decision). *)
    let owner : (int, Unix.file_descr) Hashtbl.t = Hashtbl.create 256 in
    let buf = Bytes.create 65536 in
    let decided = ref 0 in
    let drop fd =
      Hashtbl.remove clients fd;
      (try Unix.close fd with Unix.Unix_error _ -> ())
    in
    let respond fd resp =
      let b = Buffer.create 256 in
      Frame.write_response b resp;
      if not (write_all fd (Frame.encode_frame (Buffer.contents b))) then
        drop fd
    in
    let handle_payload fd payload =
      let r = Codec.Wire.reader_of_string payload in
      match Frame.read_request r with
      | Frame.Submit { id; _ } as req ->
        if not (Codec.Wire.reader_done r) then
          raise (Frame.Malformed "trailing bytes after request");
        (match Server.job_of_request req with
         | Error reason -> respond fd (Frame.Rejected { id; reason })
         | Ok job ->
           (match Server.submit server job with
            | () -> Hashtbl.replace owner id fd
            | exception Invalid_argument reason ->
              respond fd (Frame.Rejected { id; reason })))
    in
    let feed_frames fd dec data =
      Frame.feed dec data;
      let rec frames () =
        match Frame.next dec with
        | Some payload ->
          handle_payload fd payload;
          if Hashtbl.mem clients fd then frames ()
        | None -> ()
      in
      try frames () with
      | Frame.Malformed msg | Codec.Wire.Malformed msg ->
        Printf.eprintf "chc_serve: dropping client (malformed: %s)\n%!" msg;
        drop fd
    in
    let feed_http fd conn data =
      match Admin.feed admin_src conn data with
      | `More -> ()
      | `Respond resp | `Bad resp ->
        ignore (write_all fd resp);
        drop fd
    in
    let serve_client fd =
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> drop fd
      | k ->
        let data = Bytes.sub_string buf 0 k in
        (match Hashtbl.find clients fd with
         | Fresh when Admin.looks_like_http data ->
           let conn = Admin.conn () in
           Hashtbl.replace clients fd (Http conn);
           feed_http fd conn data
         | Fresh ->
           let dec = Frame.decoder () in
           Hashtbl.replace clients fd (Frames dec);
           feed_frames fd dec data
         | Frames dec -> feed_frames fd dec data
         | Http conn -> feed_http fd conn data)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> drop fd
    in
    let finished () = limit > 0 && !decided >= limit in
    while not (finished ()) do
      let fds = sock :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
      let fds =
        match admin with None -> fds | Some a -> Admin.fds a @ fds
      in
      (* Busy only while instances are in flight; idle select blocks
         briefly so a killed --limit run still exits promptly. *)
      let timeout = if Server.inflight server > 0 then 0. else 0.05 in
      let ready, _, _ = Unix.select fds [] [] timeout in
      List.iter
        (fun fd ->
           match admin with
           | Some a when Admin.owns a fd -> Admin.handle_ready a fd
           | _ ->
             if fd == sock then begin
               let cfd, _ = Unix.accept sock in
               Hashtbl.replace clients cfd Fresh
             end
             else if Hashtbl.mem clients fd then serve_client fd)
        ready;
      List.iter
        (fun (o : Server.outcome) ->
           incr decided;
           ignore (Server.grade_count server o : (unit, string) result);
           let id = o.Server.job.Server.id in
           (match Hashtbl.find_opt owner id with
            | Some fd when Hashtbl.mem clients fd ->
              respond fd (Server.response_of_outcome o)
            | Some _ | None -> ());
           Hashtbl.remove owner id)
        (Server.pump server);
      Obs.Log.flush ()
    done;
    Hashtbl.iter
      (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
      clients;
    Option.iter Admin.close admin;
    Unix.close sock;
    Printf.printf "chc_serve: %d instance(s) decided, exiting\n" !decided;
    telem_teardown telem server;
    `Ok ()

let listen_term =
  Term.(ret
          (const listen_cmd $ Cli.kernel_arg $ Cli.poly_arg $ shards_arg
           $ fuel_arg
           $ wal_dir_arg $ telem_term $ port_arg $ admin_port_arg
           $ limit_arg))

let listen_info =
  Cmd.info "listen"
    ~doc:"Serve consensus instances over a TCP socket."
    ~man:
      [ `S Manpage.s_description;
        `P "Clients speak length-prefixed binary frames (unsigned LEB128 \
            length, Codec.Wire payload): a Submit request names an \
            instance id, a problem shape (n, f, d, eps, bounds) and the \
            n input points; the daemon answers with a Decision frame \
            carrying the decided polytope, or a Rejected frame naming \
            the validation error. Instances from many clients run \
            concurrently, sharded across domains. A connection opening \
            with an HTTP GET is answered by the admin plane instead \
            (/metrics, /healthz, /statusz) — see also --admin-port." ]

(* --- entry ------------------------------------------------------------ *)

let () =
  (* a client closing mid-write must surface as EPIPE (handled in
     write_all), not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let info =
    Cmd.info "chc_serve" ~version:"1.0"
      ~doc:"Sharded multi-instance convex hull consensus daemon."
  in
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group info
            [ Cmd.v drive_info drive_term;
              Cmd.v resume_info resume_term;
              Cmd.v listen_info listen_term ])
     with
     | Obs.Sink.Write_error { path; message } ->
       Printf.eprintf "chc_serve: write failed: %s: %s\n" path message;
       74
     | Chc.Scenario.Data_error e ->
       Printf.eprintf "chc_serve: bad input data: %s\n"
         (Chc.Scenario.error_to_string e);
       65)
