(* chc_serve — the sharded multi-instance consensus daemon.

   One daemon multiplexes thousands of concurrent Algorithm CC
   instances, each over its own deterministic FIFO loopback, sharded
   across domains by the parallel pool (see lib/serve).

   Examples:
     dune exec bin/chc_serve.exe -- drive --instances 500 --concurrency 128
     dune exec bin/chc_serve.exe -- drive --wal-dir /tmp/chcwal --instances 50
     dune exec bin/chc_serve.exe -- resume --wal-dir /tmp/chcwal
     dune exec bin/chc_serve.exe -- listen --port 7465 --limit 100 *)

open Cmdliner

module Cli = Chc.Cli
module Frame = Serve.Frame
module Server = Serve.Server
module Workload = Serve.Workload

let with_kernel kernel k =
  match Cli.set_kernel kernel with
  | Error msg -> `Error (false, msg)
  | Ok () -> k ()

(* --- shared daemon flags --------------------------------------------- *)

let shards_arg =
  Arg.(value & opt (some int) None
       & info ["shards"] ~docv:"K"
           ~doc:"Number of instance shards, each pumped by one domain-pool \
                 task per round (default: the pool size, CHC_DOMAINS).")

let fuel_arg =
  Arg.(value & opt int 64
       & info ["fuel"] ~docv:"MSGS"
           ~doc:"Messages delivered per instance per pump round — the \
                 per-instance latency vs cross-instance fairness dial.")

let wal_dir_arg =
  Arg.(value & opt (some string) None
       & info ["wal-dir"] ~docv:"DIR"
           ~doc:"Arm durability: every instance writes per-process WALs, \
                 a scenario file and a completion marker under \
                 $(docv)/inst-<id>/; a restarted daemon resumes the \
                 unfinished ones ($(b,chc_serve resume)).")

let metrics_arg =
  Arg.(value & flag
       & info ["metrics"]
           ~doc:"Print the Prometheus exposition of the full metrics \
                 registry when done.")

let print_metrics () = print_string (Obs.Metrics.exposition_all ())

let print_phase (p : Workload.phase) =
  Printf.printf
    "%-12s %6d instances  %7.2fs  %8.1f inst/s  p50 %6.1fms  p99 %6.1fms  \
     max %6.1fms  inflight<=%d\n"
    p.Workload.label p.Workload.instances p.Workload.wall_s
    p.Workload.throughput_ips
    (p.Workload.latency_p50_s *. 1e3)
    (p.Workload.latency_p99_s *. 1e3)
    (p.Workload.latency_max_s *. 1e3)
    p.Workload.max_inflight;
  List.iter (fun msg -> Printf.printf "  GRADE FAIL %s\n" msg)
    p.Workload.grade_failures

(* --- drive: in-process synthetic workload ---------------------------- *)

let instances_arg =
  Arg.(value & opt int 200
       & info ["instances"] ~docv:"K"
           ~doc:"Consensus instances to complete.")

let concurrency_arg =
  Arg.(value & opt int 64
       & info ["concurrency"] ~docv:"K"
           ~doc:"Instances held in flight (closed-loop).")

let drive_cmd kernel seed shards fuel wal_dir metrics instances concurrency =
  with_kernel kernel @@ fun () ->
  if instances < 1 then `Error (false, "--instances: must be >= 1")
  else if concurrency < 1 then `Error (false, "--concurrency: must be >= 1")
  else begin
    let server = Server.create ?shards ~fuel ?wal_dir () in
    Printf.printf
      "chc_serve drive: %d instances, concurrency %d, %d shard(s), fuel %d%s\n%!"
      instances concurrency (Server.shards server) fuel
      (match wal_dir with None -> "" | Some d -> ", wal " ^ d);
    let rng = Runtime.Rng.create seed in
    let phase =
      Workload.closed_loop ~server ~rng ~mix:Workload.default_mix
        ~label:"closed" ~first_id:0 ~concurrency ~total:instances
    in
    print_phase phase;
    if metrics then print_metrics ();
    if phase.Workload.grade_failures = [] then `Ok ()
    else `Error (false, "Theorem 2 violations under load (see above)")
  end

let drive_term =
  Term.(ret
          (const drive_cmd $ Cli.kernel_arg $ Cli.seed_arg $ shards_arg
           $ fuel_arg $ wal_dir_arg $ metrics_arg $ instances_arg
           $ concurrency_arg))

let drive_info =
  Cmd.info "drive"
    ~doc:"Run a synthetic closed-loop workload through an in-process daemon."
    ~man:
      [ `S Manpage.s_description;
        `P "Submits a deterministic mix of problem shapes — including \
            crash-recovery instances — keeps --concurrency of them in \
            flight until --instances have decided, grades every decision \
            against the paper's Theorem 2 properties on the spot, and \
            prints throughput and decision-latency percentiles. Exit \
            status is non-zero iff any instance violated a property." ]

(* --- resume: restart recovery from a WAL directory -------------------- *)

let resume_cmd kernel shards fuel wal_dir metrics =
  with_kernel kernel @@ fun () ->
  match wal_dir with
  | None -> `Error (false, "--wal-dir is required for resume")
  | Some dir ->
    let pending = Server.scan_wal ~wal_dir:dir in
    Printf.printf "chc_serve resume: %d unfinished instance(s) under %s\n%!"
      (List.length pending) dir;
    if pending = [] then `Ok ()
    else begin
      let server = Server.create ?shards ~fuel ~wal_dir:dir () in
      List.iter
        (fun (job, entries) -> Server.submit server ~resume:entries job)
        pending;
      let outcomes = Server.drain server in
      let failures =
        List.filter_map
          (fun o ->
             match Server.grade o with
             | Ok () -> None
             | Error msg ->
               Some (Printf.sprintf "instance %d: %s" o.Server.job.Server.id msg))
          outcomes
      in
      List.iter
        (fun o ->
           Printf.printf "instance %-6d decided after resume (t_end %d%s)\n"
             o.Server.job.Server.id o.Server.t_end
             (if o.Server.recovered = [] then ""
              else
                Printf.sprintf ", recovered {%s}"
                  (String.concat ","
                     (List.map string_of_int o.Server.recovered))))
        outcomes;
      if metrics then print_metrics ();
      match failures with
      | [] -> `Ok ()
      | msgs -> `Error (false, String.concat "\n" msgs)
    end

let resume_term =
  Term.(ret
          (const resume_cmd $ Cli.kernel_arg $ shards_arg $ fuel_arg
           $ wal_dir_arg $ metrics_arg))

let resume_info =
  Cmd.info "resume"
    ~doc:"Finish instances a killed daemon left behind in its WAL directory."
    ~man:
      [ `S Manpage.s_description;
        `P "Scans --wal-dir for inst-<id> directories without a completion \
            marker, reloads each process's surviving write-ahead log, and \
            resubmits the instances through the crash-recovery rejoin path \
            (log replay with muted sends, then rejoin). Decisions are \
            graded against Theorem 2 before the daemon exits." ]

(* --- listen: the socket front-end ------------------------------------- *)

let port_arg =
  Arg.(value & opt int 7465
       & info ["port"] ~docv:"PORT"
           ~doc:"TCP port on 127.0.0.1 (0 picks an ephemeral port, \
                 printed on startup).")

let limit_arg =
  Arg.(value & opt int 0
       & info ["limit"] ~docv:"K"
           ~doc:"Exit after deciding this many instances (0: run until \
                 killed). Lets tests and benchmarks drive a bounded \
                 session over a real socket.")

(* Write a whole frame; false if the client vanished mid-write. *)
let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off >= len then true
    else
      match Unix.write_substring fd s off (len - off) with
      | 0 -> false
      | k -> go (off + k)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        false
  in
  go 0

let listen_cmd kernel shards fuel wal_dir port limit =
  with_kernel kernel @@ fun () ->
  let server = Server.create ?shards ~fuel ?wal_dir () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  Printf.printf "chc_serve: listening on 127.0.0.1:%d (%d shard(s), fuel %d)\n%!"
    actual_port (Server.shards server) fuel;
  let clients : (Unix.file_descr, Frame.decoder) Hashtbl.t =
    Hashtbl.create 16
  in
  (* instance id -> the connection that submitted it; a response for a
     vanished client is dropped (the WAL, if armed, still records the
     decision). *)
  let owner : (int, Unix.file_descr) Hashtbl.t = Hashtbl.create 256 in
  let buf = Bytes.create 65536 in
  let decided = ref 0 in
  let drop fd =
    Hashtbl.remove clients fd;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let respond fd resp =
    let b = Buffer.create 256 in
    Frame.write_response b resp;
    if not (write_all fd (Frame.encode_frame (Buffer.contents b))) then
      drop fd
  in
  let handle_payload fd payload =
    let r = Codec.Wire.reader_of_string payload in
    match Frame.read_request r with
    | Frame.Submit { id; _ } as req ->
      if not (Codec.Wire.reader_done r) then
        raise (Frame.Malformed "trailing bytes after request");
      (match Server.job_of_request req with
       | Error reason -> respond fd (Frame.Rejected { id; reason })
       | Ok job ->
         (match Server.submit server job with
          | () -> Hashtbl.replace owner id fd
          | exception Invalid_argument reason ->
            respond fd (Frame.Rejected { id; reason })))
  in
  let serve_client fd =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> drop fd
    | k ->
      let dec = Hashtbl.find clients fd in
      Frame.feed dec (Bytes.sub_string buf 0 k);
      let rec frames () =
        match Frame.next dec with
        | Some payload ->
          handle_payload fd payload;
          if Hashtbl.mem clients fd then frames ()
        | None -> ()
      in
      (try frames () with
       | Frame.Malformed msg | Codec.Wire.Malformed msg ->
         Printf.eprintf "chc_serve: dropping client (malformed: %s)\n%!" msg;
         drop fd)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> drop fd
  in
  let finished () = limit > 0 && !decided >= limit in
  while not (finished ()) do
    let fds = sock :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
    (* Busy only while instances are in flight; idle select blocks
       briefly so a killed --limit run still exits promptly. *)
    let timeout = if Server.inflight server > 0 then 0. else 0.05 in
    let ready, _, _ = Unix.select fds [] [] timeout in
    List.iter
      (fun fd ->
         if fd == sock then begin
           let cfd, _ = Unix.accept sock in
           Hashtbl.replace clients cfd (Frame.decoder ())
         end
         else if Hashtbl.mem clients fd then serve_client fd)
      ready;
    List.iter
      (fun (o : Server.outcome) ->
         incr decided;
         let id = o.Server.job.Server.id in
         (match Hashtbl.find_opt owner id with
          | Some fd when Hashtbl.mem clients fd ->
            respond fd (Server.response_of_outcome o)
          | Some _ | None -> ());
         Hashtbl.remove owner id)
      (Server.pump server)
  done;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
    clients;
  Unix.close sock;
  Printf.printf "chc_serve: %d instance(s) decided, exiting\n" !decided;
  `Ok ()

let listen_term =
  Term.(ret
          (const listen_cmd $ Cli.kernel_arg $ shards_arg $ fuel_arg
           $ wal_dir_arg $ port_arg $ limit_arg))

let listen_info =
  Cmd.info "listen"
    ~doc:"Serve consensus instances over a TCP socket."
    ~man:
      [ `S Manpage.s_description;
        `P "Clients speak length-prefixed binary frames (unsigned LEB128 \
            length, Codec.Wire payload): a Submit request names an \
            instance id, a problem shape (n, f, d, eps, bounds) and the \
            n input points; the daemon answers with a Decision frame \
            carrying the decided polytope, or a Rejected frame naming \
            the validation error. Instances from many clients run \
            concurrently, sharded across domains." ]

(* --- entry ------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "chc_serve" ~version:"1.0"
      ~doc:"Sharded multi-instance convex hull consensus daemon."
  in
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group info
            [ Cmd.v drive_info drive_term;
              Cmd.v resume_info resume_term;
              Cmd.v listen_info listen_term ])
     with
     | Obs.Sink.Write_error { path; message } ->
       Printf.eprintf "chc_serve: write failed: %s: %s\n" path message;
       74
     | Chc.Scenario.Data_error e ->
       Printf.eprintf "chc_serve: bad input data: %s\n"
         (Chc.Scenario.error_to_string e);
       65)
