(* chc_sim — command-line driver for single executions of Algorithm CC.

   Examples:
     dune exec bin/chc_sim.exe -- run -n 5 -f 1 -d 2 --eps 0.1 --seed 7
     dune exec bin/chc_sim.exe -- run -n 7 -f 2 -d 1 --scheduler lag --verbose
     dune exec bin/chc_sim.exe -- run --inputs "0.1,0.2;0.3,0.4;0.5,0.1;0.9,0.9;0.2,0.8"
     dune exec bin/chc_sim.exe -- trace -n 5 -f 1 -d 2 --seed 7 --out run.jsonl
     dune exec bin/chc_sim.exe -- bound -n 9 -f 2 -d 2 --eps 0.01 *)

open Cmdliner

module Q = Numeric.Q
module Polytope = Geometry.Polytope
module Cli = Chc.Cli
module Executor = Chc.Executor

(* The shared execution-shaping flags (-n/-f/-d/--eps/--lo/--hi/--seed/
   --scheduler/--naive-round0/--kernel/--inputs/--faulty) live in
   {!Chc.Cli.common_args}; only flags specific to one subcommand are
   defined here. *)

let recover_arg =
  Arg.(value & flag
       & info ["recover"]
           ~doc:"Crash-recovery mode: every sampled crash plan becomes a \
                 crash-$(i,recover) plan (same trigger budget) — the \
                 process keeps a write-ahead log, crashes, loses its \
                 unsynced log suffix, replays the survivor and rejoins.")

let recover_delay_arg =
  Arg.(value & opt int 10
       & info ["recover-delay"] ~docv:"STEPS"
           ~doc:"Scheduler steps until a crashed process revives \
                 (with --recover).")

let keep_arg =
  Arg.(value & opt int 0
       & info ["keep"] ~docv:"K"
           ~doc:"Disk-prefix adversary: unsynced WAL entries that survive \
                 the crash (with --recover).")

let wal_dir_arg =
  Arg.(value & opt (some string) None
       & info ["wal-dir"] ~docv:"DIR"
           ~doc:"Write each process's surviving write-ahead log to \
                 $(docv)/wal-I.jsonl (one JSON event per line).")

let verbose_arg =
  Arg.(value & flag
       & info ["verbose"; "v"]
           ~doc:"Print per-round history and the observability report \
                 (per-round metrics, cache and pool counters).")

let svg_arg =
  Arg.(value & opt (some string) None
       & info ["svg"] ~docv:"FILE"
           ~doc:"Write an SVG rendering of the execution (d = 2 only).")

let out_arg =
  Arg.(value & opt (some string) None
       & info ["out"; "o"] ~docv:"FILE"
           ~doc:"Write the JSONL transcript to $(docv) (default: stdout).")

let report_json_arg =
  Arg.(value & opt (some string) None
       & info ["report-json"] ~docv:"FILE"
           ~doc:"Write the observability report (sim counters, per-round \
                 rows, full metrics snapshot) as JSON to $(docv).")

let critical_path_arg =
  Arg.(value & flag
       & info ["critical-path"]
           ~doc:"Reconstruct the happens-before DAG from the trace and \
                 print, per process, the critical message chain to its \
                 decision plus per-round stabilization latency in \
                 scheduler steps. Pool-size invariant.")

(* --- helpers --------------------------------------------------------- *)

(* Install the --kernel and --poly choices as the process defaults
   before running; None keeps the ambient defaults (CHC_KERNEL or
   filtered; CHC_POLY or incremental). *)
let with_modes kernel poly k =
  match Cli.set_kernel kernel with
  | Error msg -> `Error (false, msg)
  | Ok () ->
    (match Cli.set_poly poly with
     | Error msg -> `Error (false, msg)
     | Ok () -> k ())

(* --- run command ------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let run_cmd (c : Cli.common) recover recover_delay keep wal_dir verbose svg
    report_json =
  with_modes c.Cli.kernel c.Cli.poly @@ fun () ->
  match Cli.scenario_of_common c with
  | Error msg -> `Error (false, msg)
  | Ok spec ->
    let spec =
      if recover then Cli.recoverize ~delay:recover_delay ~keep spec else spec
    in
    match
      let trace =
        if verbose || report_json <> None then Some (Obs.Trace.create ())
        else None
      in
      (Executor.run ?trace spec, trace)
    with
    | exception (Failure msg | Invalid_argument msg) -> `Error (false, msg)
    | (r, trace) ->
      Printf.printf "config: n=%d f=%d d=%d eps=%s  t_end=%d  seed=%d\n"
        c.Cli.n c.Cli.f c.Cli.d c.Cli.eps r.Executor.result.Chc.Cc.t_end
        c.Cli.seed;
      Printf.printf "faulty set: {%s}\n"
        (String.concat "," (List.map string_of_int r.Executor.faulty));
      if r.Executor.recovered <> [] then
        Printf.printf "recovered:  {%s}  decision-stable=%b\n"
          (String.concat "," (List.map string_of_int r.Executor.recovered))
          r.Executor.decision_stable;
      Array.iteri
        (fun i o ->
           match o with
           | Some h ->
             Printf.printf "process %d decided (%d vertices)%s\n" i
               (List.length (Polytope.vertices h))
               (if verbose then ": " ^ Polytope.to_string h else "")
           | None -> Printf.printf "process %d crashed before deciding\n" i)
        r.Executor.result.Chc.Cc.outputs;
      if verbose then
        Array.iteri
          (fun i hist ->
             Printf.printf "history of process %d:\n" i;
             List.iter
               (fun (t, h) ->
                  Printf.printf "  h[%d] = %s\n" t (Polytope.to_string h))
               hist)
          r.Executor.result.Chc.Cc.history;
      Printf.printf "\nterminated   %b\nvalidity     %b\nagreement    %b"
        r.Executor.terminated r.Executor.valid r.Executor.agreement_ok;
      (match r.Executor.agreement2 with
       | Some a -> Printf.printf "  (max dH = %.6f)\n" (sqrt (Q.to_float a))
       | None -> print_newline ());
      Printf.printf "optimality   %b\n" r.Executor.optimal;
      (match r.Executor.min_output_volume with
       | Some v -> Printf.printf "min volume   %.6f\n" (Q.to_float v)
       | None -> ());
      let m = r.Executor.result.Chc.Cc.metrics in
      Printf.printf "messages     sent=%d delivered=%d dropped-by-crash=%d\n"
        m.Runtime.Sim.sent m.Runtime.Sim.delivered m.Runtime.Sim.dropped;
      if verbose then
        Obs.Report.print stdout (Executor.observe ?trace ~witnesses:c.Cli.n r);
      (match wal_dir with
       | None -> ()
       | Some dir ->
         (try mkdir_p dir with
          | Unix.Unix_error (e, _, _) ->
            raise (Obs.Sink.Write_error
                     { path = dir; message = Unix.error_message e })
          | Sys_error message ->
            raise (Obs.Sink.Write_error { path = dir; message }));
         Array.iteri
           (fun i evs ->
              if evs <> [] then begin
                let path =
                  Filename.concat dir (Printf.sprintf "wal-%d.jsonl" i)
                in
                (* write_file_exn: an I/O failure raises the typed
                   Sink.Write_error, which main maps to exit code 74. *)
                Obs.Sink.write_file_exn ~path (fun oc ->
                    List.iter
                      (fun e ->
                         output_string oc (Chc.Recovery.event_to_string e);
                         output_char oc '\n')
                      evs);
                Printf.printf "wal          process %d: %d events -> %s\n" i
                  (List.length evs) path
              end)
           r.Executor.result.Chc.Cc.wal_log);
      (match svg with
       | Some path when c.Cli.d = 2 ->
         Viz.Svg.render_to_file ~path ~report:r;
         Printf.printf "svg          written to %s\n" path
       | Some _ -> prerr_endline "warning: --svg only supported for d = 2"
       | None -> ());
      let json_status =
        match report_json with
        | None -> Ok ()
        | Some path ->
          let report = Executor.observe ?trace ~witnesses:c.Cli.n r in
          (match
             Obs.Sink.write_string ~path (Obs.Report.to_json report)
           with
           | Ok () ->
             Printf.printf "report       written to %s\n" path;
             Ok ()
           | Error msg -> Error msg)
      in
      (match json_status with
       | Error msg -> `Error (false, msg)
       | Ok () ->
         if r.Executor.terminated && r.Executor.valid && r.Executor.agreement_ok
         then `Ok ()
         else `Error (false, "a correctness property failed"))

let run_term =
  Term.(ret
          (const run_cmd $ Cli.common_args
           $ recover_arg $ recover_delay_arg $ keep_arg $ wal_dir_arg
           $ verbose_arg $ svg_arg $ report_json_arg))

let run_cmd_info =
  Cmd.info "run" ~doc:"Execute Algorithm CC once and grade the run."

(* --- trace command ---------------------------------------------------- *)

let trace_cmd (c : Cli.common) out critical_path =
  with_modes c.Cli.kernel c.Cli.poly @@ fun () ->
  match Cli.scenario_of_common c with
  | Error msg -> `Error (false, msg)
  | Ok spec ->
    let trace = Obs.Trace.create () in
    match
      Chc.Cc.execute ~trace ~round0:spec.Executor.round0
        ~config:spec.Executor.config ~inputs:spec.Executor.inputs
        ~crash:spec.Executor.crash ~scheduler:spec.Executor.scheduler
        ~seed:c.Cli.seed ()
    with
    | exception (Failure msg | Invalid_argument msg) -> `Error (false, msg)
    | _result ->
      let write_status =
        match out with
        | None | Some "-" ->
          Obs.Trace.output stdout trace;
          Ok ()
        | Some path ->
          (match
             Obs.Sink.write_file ~path (fun oc -> Obs.Trace.output oc trace)
           with
           | Ok () ->
             Printf.printf "trace: %d events written to %s\n"
               (Obs.Trace.length trace) path;
             Ok ()
           | Error msg -> Error msg)
      in
      (match write_status with
       | Error msg -> `Error (false, msg)
       | Ok () ->
         if critical_path then
           print_string
             (Obs.Causal.to_string (Obs.Causal.analyze ~n:c.Cli.n trace));
         `Ok ())

let trace_term =
  Term.(ret (const trace_cmd $ Cli.common_args $ out_arg $ critical_path_arg))

let trace_cmd_info =
  Cmd.info "trace"
    ~doc:"Re-run a seed and dump the execution transcript as JSONL."
    ~man:
      [ `S Manpage.s_description;
        `P "Executions are pure functions of (config, inputs, seed, \
            adversary), so the transcript written here is a complete, \
            replayable artifact: re-running the same command reproduces \
            it byte-for-byte, whatever CHC_DOMAINS is set to.";
        `P "One JSON object per line: transport events (send, drop, \
            deliver, dead_letter, crash) interleaved in schedule order \
            with protocol milestones (round_enter, stable, decide)." ]

(* --- profile command -------------------------------------------------- *)

let prof_out_arg =
  Arg.(value & opt string "prof.json"
       & info ["out"; "o"] ~docv:"FILE"
           ~doc:"Where the Chrome trace-event / Perfetto JSON is written.")

let profile_cmd (c : Cli.common) out =
  with_modes c.Cli.kernel c.Cli.poly @@ fun () ->
  match Cli.scenario_of_common c with
  | Error msg -> `Error (false, msg)
  | Ok spec ->
    Obs.Prof.reset ();
    Obs.Prof.set_enabled true;
    let outcome =
      match Executor.run spec with
      | r -> Ok r
      | exception (Failure msg | Invalid_argument msg) -> Error msg
    in
    Obs.Prof.set_enabled false;
    match outcome with
    | Error msg -> `Error (false, msg)
    | Ok r ->
      (match Obs.Sink.write_string ~path:out (Obs.Prof.to_chrome_json ()) with
       | Error msg -> `Error (false, msg)
       | Ok () ->
         let decided =
           Array.fold_left
             (fun acc o -> if o = None then acc else acc + 1)
             0 r.Executor.result.Chc.Cc.outputs
         in
         Printf.printf
           "profile: %d spans written to %s (%d/%d processes decided)\n"
           (Obs.Prof.span_count ()) out decided c.Cli.n;
         Printf.printf "%-22s %8s %12s %10s %10s %10s\n"
           "span" "calls" "total_ms" "p50_us" "p99_us" "max_us";
         List.iter
           (fun (name, (s : Obs.Prof.stat)) ->
              Printf.printf "%-22s %8d %12.3f %10.1f %10.1f %10.1f\n"
                name s.Obs.Prof.calls
                (s.Obs.Prof.total_ns /. 1e6)
                (s.Obs.Prof.p50_ns /. 1e3)
                (s.Obs.Prof.p99_ns /. 1e3)
                (s.Obs.Prof.max_ns /. 1e3))
           (Obs.Prof.summary ());
         `Ok ())

let profile_term =
  Term.(ret (const profile_cmd $ Cli.common_args $ prof_out_arg))

let profile_cmd_info =
  Cmd.info "profile"
    ~doc:"Execute once with the span profiler on and export a Perfetto trace."
    ~man:
      [ `S Manpage.s_description;
        `P "Runs Algorithm CC with wall-clock span recording enabled in \
            every instrumented layer (geometry kernels, LP, domain pool, \
            memo tables, wire codec, stable vector, round engine) and \
            writes Chrome trace-event JSON loadable in ui.perfetto.dev \
            or chrome://tracing — one track per domain, spans nested by \
            call stack.";
        `P "Profiling is observational: it never changes scheduling, and \
            the deterministic JSONL transcript of the same seed is \
            byte-identical with or without it. Wall-clock numbers, by \
            nature, vary run to run — for schedule-invariant latency use \
            $(b,chc_sim trace --critical-path)." ]

(* --- bound command ---------------------------------------------------- *)

let bound_cmd (c : Cli.common) =
  try
    let config =
      Chc.Config.make ~n:c.Cli.n ~f:c.Cli.f ~d:c.Cli.d
        ~eps:(Q.of_string c.Cli.eps) ~lo:(Q.of_string c.Cli.lo)
        ~hi:(Q.of_string c.Cli.hi)
    in
    Printf.printf "n=%d f=%d d=%d eps=%s range=[%s,%s]\n" c.Cli.n c.Cli.f
      c.Cli.d c.Cli.eps c.Cli.lo c.Cli.hi;
    Printf.printf "resilience: n >= (d+2)f+1 = %d  (ok)\n"
      (((c.Cli.d + 2) * c.Cli.f) + 1);
    Printf.printf "t_end (eq. 19) = %d rounds\n" (Chc.Bounds.t_end config);
    `Ok ()
  with Invalid_argument msg | Failure msg -> `Error (false, msg)

let bound_term = Term.(ret (const bound_cmd $ Cli.common_args))

let bound_cmd_info =
  Cmd.info "bound" ~doc:"Print the analytic round bound t_end (equation 19)."

(* --- fuzz command ----------------------------------------------------- *)

let trials_arg =
  Arg.(value & opt int 200
       & info ["trials"] ~docv:"K" ~doc:"Number of scenarios to explore.")

let time_budget_arg =
  Arg.(value & opt (some float) None
       & info ["time-budget"] ~docv:"SECONDS"
           ~doc:"Stop after this much wall clock, whatever --trials says.")

let out_dir_arg =
  Arg.(value & opt string "fuzz-artifacts"
       & info ["out-dir"] ~docv:"DIR"
           ~doc:"Where counterexample artifacts are written.")

let max_findings_arg =
  Arg.(value & opt int 3
       & info ["max-findings"] ~docv:"K"
           ~doc:"Stop after shrinking this many failures.")

let canary_arg =
  Arg.(value & opt (some string) None
       & info ["canary-eps"] ~docv:"EPS"
           ~doc:"Grade against an explicit agreement threshold instead of \
                 the paper's properties. A threshold below the configured \
                 ε manufactures violations — the self-test that the \
                 campaign and shrinker work.")

let differential_arg =
  Arg.(value & flag
       & info ["differential"]
           ~doc:"After every trial that passes the oracle, re-run it under \
                 every arithmetic kernel — exact as the oracle, then \
                 filtered and staged (memo caches bypassed) — and under \
                 both polytope engines — rebuild as the oracle vs \
                 incremental with a fresh engine handle — and flag \
                 any divergence in the decided polytopes as a shrinkable \
                 counterexample.")

let naive_space_arg =
  Arg.(value & flag
       & info ["naive-round0"]
           ~doc:"Explore the naive round-0 ablation instead of stable \
                 vector. The ablation genuinely forfeits optimality, so \
                 with the default oracle this is a live demonstration that \
                 the fuzzer finds and shrinks real violations.")

let recover_space_arg =
  Arg.(value & flag
       & info ["recover"]
           ~doc:"Recovery-focused space: every sampled crasher gets a \
                 crash-recover plan (WAL, disk-prefix truncation, replay, \
                 rejoin), so the campaign grades the paper's properties \
                 over recovered executions.")

let unsound_sync_arg =
  Arg.(value & flag
       & info ["unsound-sync"]
           ~doc:"Teeth demo: force every sampled WAL config to the \
                 deliberately broken no-op sync mode. Recovered processes \
                 can roll back behind externalized state, and the oracle \
                 must find (and shrink) the resulting violations — expect \
                 a non-zero exit. Implies --recover.")

let fuzz_cmd kernel poly differential trials seed time_budget out_dir
    max_findings canary naive recover unsound_sync =
  with_modes kernel poly @@ fun () ->
  let oracle =
    match canary with
    | None -> Ok Fuzz.Oracle.Paper_properties
    | Some s ->
      (match Q.of_string s with
       | eps when Q.gt eps Q.zero -> Ok (Fuzz.Oracle.Agreement_within eps)
       | _ -> Error "--canary-eps: must be positive"
       | exception (Invalid_argument _ | Failure _) ->
         Error (Printf.sprintf "--canary-eps: %S is not a rational" s))
  in
  match oracle with
  | Error msg -> `Error (false, msg)
  | Ok oracle ->
    Printf.printf "fuzz: %d trials, seed %d, oracle %s%s%s\n%!" trials seed
      (Fuzz.Oracle.name oracle)
      (if differential then " + kernel-equivalence + engine-equivalence"
       else "")
      (match time_budget with
       | None -> ""
       | Some s -> Printf.sprintf ", time budget %.0fs" s);
    let space =
      (* The ablation's exact-geometry cost explodes at d=2 with ten
         divergent processes; d=1 demonstrates its violations just as
         well and keeps every trial sub-second. *)
      if naive then
        { Fuzz.Gen.default_space with
          Fuzz.Gen.naive_round0 = `Always; d_choices = [ 1 ] }
      else Fuzz.Gen.default_space
    in
    let space =
      if recover || unsound_sync then
        { space with Fuzz.Gen.recover = `Always; unsound_sync }
      else space
    in
    (* The durability bug needs a crash AFTER externalized state worth
       losing — raise the trigger budgets so receive-triggered crashes
       can land past a decision (ensure_crash clamps them back into
       what the execution actually performs). *)
    let space =
      if unsound_sync then { space with Fuzz.Gen.max_budget = 300 } else space
    in
    let outcome =
      Fuzz.Campaign.run ~space ~oracle ~differential ~out_dir ~max_findings
        ~log:print_endline ~seed
        { Fuzz.Campaign.trials; time_budget }
    in
    Printf.printf "fuzz: %d/%d trials in %.1fs, %d violation(s)\n"
      outcome.Fuzz.Campaign.trials_run trials outcome.Fuzz.Campaign.elapsed
      (List.length outcome.Fuzz.Campaign.findings);
    (match outcome.Fuzz.Campaign.findings with
     | [] -> `Ok ()
     | findings ->
       List.iter
         (fun f ->
            Printf.printf "  %s: %s\n" f.Fuzz.Campaign.path
              f.Fuzz.Campaign.artifact.Fuzz.Artifact.violation)
         findings;
       `Error (false, "counterexamples found (replay with: chc_sim replay FILE)"))

let fuzz_term =
  Term.(ret
          (const fuzz_cmd $ Cli.kernel_arg $ Cli.poly_arg $ differential_arg
           $ trials_arg $ Cli.seed_arg $ time_budget_arg $ out_dir_arg
           $ max_findings_arg $ canary_arg $ naive_space_arg
           $ recover_space_arg $ unsound_sync_arg))

let fuzz_cmd_info =
  Cmd.info "fuzz"
    ~doc:"Randomized adversary exploration with counterexample shrinking."
    ~man:
      [ `S Manpage.s_description;
        `P "Samples (scheduler strategy × crash plan × input geometry) \
            scenarios, executes each over the parallel domain pool, and \
            grades every property the paper proves. Any failure is shrunk \
            to a minimal counterexample and written to --out-dir as a \
            replayable JSON artifact plus its execution transcript.";
        `P "Campaigns are deterministic in --seed (absent a --time-budget \
            cut-off); exit status is non-zero iff a violation was found." ]

(* --- replay command --------------------------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"FILE"
           ~doc:"A counterexample artifact (or bare scenario) JSON file.")

let replay_cmd kernel poly file =
  with_modes kernel poly @@ fun () ->
  match Fuzz.Artifact.load_any file with
  | Error e ->
    (* Typed scenario/artifact data error: mapped to exit 65
       (EX_DATAERR) by the top-level handler, alongside Sink's 74. *)
    raise (Chc.Scenario.Data_error e)
  | Ok artifact ->
    let scenario = artifact.Fuzz.Artifact.scenario in
    Printf.printf "replay: %s\n" (Chc.Scenario.describe scenario);
    Printf.printf "oracle: %s\n" (Fuzz.Oracle.name artifact.Fuzz.Artifact.oracle);
    if artifact.Fuzz.Artifact.violation <> "" then
      Printf.printf "recorded violation: %s\n" artifact.Fuzz.Artifact.violation;
    (match Fuzz.Oracle.check artifact.Fuzz.Artifact.oracle scenario with
     | Fuzz.Oracle.Pass ->
       Printf.printf "verdict: PASS\n";
       `Ok ()
     | Fuzz.Oracle.Fail msg ->
       Printf.printf "verdict: FAIL (%s)\n" msg;
       `Error (false, "violation reproduced"))

let replay_term =
  Term.(ret (const replay_cmd $ Cli.kernel_arg $ Cli.poly_arg $ file_arg))

let replay_cmd_info =
  Cmd.info "replay"
    ~doc:"Re-execute a saved scenario or counterexample artifact and re-grade it."
    ~man:
      [ `S Manpage.s_description;
        `P "Executions are pure functions of the scenario, so replaying an \
            artifact reproduces the recorded violation deterministically; \
            exit status is non-zero iff the embedded oracle still fails." ]

(* --- entry ------------------------------------------------------------ *)

let () =
  (* Make the fuzzer's strategies addressable from --scheduler and
     loadable from artifacts before any command parses. *)
  Fuzz.Strategies.register_builtin ();
  let info =
    Cmd.info "chc_sim" ~version:"1.0"
      ~doc:"Asynchronous convex hull consensus simulator (Tseng-Vaidya, PODC'14)."
  in
  exit
    (try
       (* catch:false so the typed errors below reach these handlers
          instead of cmdliner's exit-125 backtrace printer. *)
       Cmd.eval ~catch:false
         (Cmd.group info
            [ Cmd.v run_cmd_info run_term;
              Cmd.v trace_cmd_info trace_term;
              Cmd.v profile_cmd_info profile_term;
              Cmd.v bound_cmd_info bound_term;
              Cmd.v fuzz_cmd_info fuzz_term;
              Cmd.v replay_cmd_info replay_term ])
     with
     | Obs.Sink.Write_error { path; message } ->
       (* Typed I/O failure from any atomic sink write (artifacts,
          traces, WAL persistence): report which file and exit with
          EX_IOERR so scripts can tell "finding" from "disk". *)
       Printf.eprintf "chc_sim: write failed: %s: %s\n" path message;
       74
     | Chc.Scenario.Data_error e ->
       (* Typed user-data failure (malformed/unsupported scenario or
          artifact file): EX_DATAERR, distinct from I/O's 74. *)
       Printf.eprintf "chc_sim: bad input data: %s\n"
         (Chc.Scenario.error_to_string e);
       65)
