(* E13 — Filtered-kernel ablation: exact rationals vs the certified
   float-interval filter with exact fallback (Numeric.Filter), across
   full executions of Algorithm CC.

   For each (n, d) the same scenario is executed twice — once with
   CHC_KERNEL=exact semantics, once filtered. The structural memo
   tables stay enabled (that is the production hot path) but are
   flushed before every measured run, so each starts from cold caches
   and a value computed under one kernel is never served to the
   other's run. The filter's hit/fallback counters give the fraction
   of sign/comparison predicates the interval filter could certify.
   Results land in BENCH_E13.json. *)

module Q = Numeric.Q
module K = Numeric.Kernel

type entry = {
  n : int;
  d : int;
  exact_ms : float;
  filtered_ms : float;
  hits : int;
  fallbacks : int;
  preds : (string * K.stat) list;  (** per-predicate, filtered run only *)
}

let time_exec spec mode =
  K.with_mode mode (fun () ->
      let reps = if Util.fast then 1 else 3 in
      let best = ref infinity in
      for _ = 1 to reps do
        Parallel.Memo.clear_all ();
        let t0 = Unix.gettimeofday () in
        ignore (Chc.Executor.run spec);
        best := Float.min !best (1000.0 *. (Unix.gettimeofday () -. t0))
      done;
      !best)

let measure (n, d) =
  let config =
    Chc.Config.make ~n ~f:1 ~d ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Chc.Executor.default_spec ~config ~seed:42 () in
  let exact_ms = time_exec spec K.Exact in
  K.reset_stats ();
  let filtered_ms = time_exec spec K.Filtered in
  let { K.hits; fallbacks } = K.totals () in
  let preds =
    List.filter (fun (_, s) -> s.K.hits + s.K.fallbacks > 0) (K.stats ())
  in
  { n; d; exact_ms; filtered_ms; hits; fallbacks; preds }

let rate e =
  let total = e.hits + e.fallbacks in
  if total = 0 then 0.0 else float_of_int e.fallbacks /. float_of_int total

let emit_json entries =
  match
    Obs.Sink.write_file ~path:"BENCH_E13.json" (fun oc ->
        output_string oc
          "{\n  \"experiment\": \"e13\",\n  \"unit\": \"ms/execution\",\n\
          \  \"results\": [\n";
        let last = List.length entries - 1 in
        List.iteri
          (fun i e ->
             Printf.fprintf oc
               "    {\"name\": \"full-execution-n%d-d%d\", \"exact_ms\": \
                %.2f, \"filtered_ms\": %.2f, \"speedup\": %.3f, \
                \"filter_hits\": %d, \"filter_fallbacks\": %d, \
                \"fallback_rate\": %.4f, \"preds\": [%s]}%s\n"
               e.n e.d e.exact_ms e.filtered_ms
               (if e.filtered_ms > 0.0 then e.exact_ms /. e.filtered_ms
                else 0.0)
               e.hits e.fallbacks (rate e)
               (String.concat ", "
                  (List.map
                     (fun (p, (s : K.stat)) ->
                        Printf.sprintf
                          "{\"pred\": \"%s\", \"hits\": %d, \"fallbacks\": %d}"
                          p s.K.hits s.K.fallbacks)
                     e.preds))
               (if i = last then "" else ","))
          entries;
        output_string oc "  ]\n}\n")
  with
  | Ok () ->
    Printf.printf "  wrote BENCH_E13.json (%d entries)\n" (List.length entries)
  | Error msg -> Printf.printf "  BENCH_E13.json NOT written: %s\n" msg

let run () =
  (* n >= (d+2)f + 1, so d=3 starts at n=6. *)
  let entries = List.map measure [ (5, 2); (6, 2); (6, 3); (7, 3) ] in
  Util.print_table
    ~title:
      "E13: filtered kernel vs exact rationals (cold caches per run)"
    ~header:
      ["scenario"; "exact ms"; "filt ms"; "speedup"; "fallback"; "rate"]
    ~widths:[22; 9; 9; 8; 16; 6]
    (List.map
       (fun e ->
          [ Printf.sprintf "n=%d f=1 d=%d seed=42" e.n e.d;
            Printf.sprintf "%.1f" e.exact_ms;
            Printf.sprintf "%.1f" e.filtered_ms;
            Printf.sprintf "%.2fx"
              (if e.filtered_ms > 0.0 then e.exact_ms /. e.filtered_ms
               else 0.0);
            Printf.sprintf "%d/%d" e.fallbacks (e.hits + e.fallbacks);
            Printf.sprintf "%.1f%%" (100.0 *. rate e) ])
       entries);
  emit_json entries
