(* E13 — Kernel ablation: exact rationals vs the certified
   float-interval filter vs the staged scaled-integer kernel, across
   full executions of Algorithm CC.

   For each (n, d) the same scenario is executed three times — once
   per CHC_KERNEL mode. The structural memo tables stay enabled (that
   is the production hot path) but are flushed before every measured
   run, so each starts from cold caches and a value computed under one
   kernel is never served to another's run. The filter's per-stage
   counters give, for each kernel, the fraction of predicates each
   stage certified: interval hits, scaled-integer second-stage hits
   (staged only), and exact fallbacks. Results land in
   BENCH_E13.json. *)

module Q = Numeric.Q
module K = Numeric.Kernel

type entry = {
  n : int;
  d : int;
  exact_ms : float;
  filtered_ms : float;
  staged_ms : float;
  f_hits : int;          (* filtered run: interval hits *)
  f_fallbacks : int;     (* filtered run: exact fallbacks *)
  s_hits : int;          (* staged run: interval hits *)
  s_int_hits : int;      (* staged run: second-stage hits *)
  s_fallbacks : int;     (* staged run: exact fallbacks *)
  preds : (string * K.stat) list;  (** per-predicate, staged run only *)
}

let time_exec spec mode =
  K.with_mode mode (fun () ->
      let reps = if Util.fast then 1 else 3 in
      let best = ref infinity in
      for _ = 1 to reps do
        Parallel.Memo.clear_all ();
        let t0 = Unix.gettimeofday () in
        ignore (Chc.Executor.run spec);
        best := Float.min !best (1000.0 *. (Unix.gettimeofday () -. t0))
      done;
      !best)

let measure (n, d) =
  let config =
    Chc.Config.make ~n ~f:1 ~d ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Chc.Executor.default_spec ~config ~seed:42 () in
  let exact_ms = time_exec spec K.Exact in
  K.reset_stats ();
  let filtered_ms = time_exec spec K.Filtered in
  let { K.hits = f_hits; fallbacks = f_fallbacks; _ } = K.totals () in
  K.reset_stats ();
  let staged_ms = time_exec spec K.Staged in
  let { K.hits = s_hits; int_hits = s_int_hits; fallbacks = s_fallbacks } =
    K.totals ()
  in
  let preds =
    List.filter
      (fun (_, s) -> s.K.hits + s.K.int_hits + s.K.fallbacks > 0)
      (K.stats ())
  in
  { n; d; exact_ms; filtered_ms; staged_ms;
    f_hits; f_fallbacks; s_hits; s_int_hits; s_fallbacks; preds }

let rate fallbacks total =
  if total = 0 then 0.0 else float_of_int fallbacks /. float_of_int total

let f_rate e = rate e.f_fallbacks (e.f_hits + e.f_fallbacks)
let s_rate e = rate e.s_fallbacks (e.s_hits + e.s_int_hits + e.s_fallbacks)

let speedup base ms = if ms > 0.0 then base /. ms else 0.0

let emit_json entries =
  match
    Obs.Sink.write_file ~path:"BENCH_E13.json" (fun oc ->
        output_string oc
          "{\n  \"experiment\": \"e13\",\n  \"unit\": \"ms/execution\",\n\
          \  \"results\": [\n";
        let last = List.length entries - 1 in
        List.iteri
          (fun i e ->
             Printf.fprintf oc
               "    {\"name\": \"full-execution-n%d-d%d\", \"exact_ms\": \
                %.2f, \"filtered_ms\": %.2f, \"staged_ms\": %.2f, \
                \"filtered_speedup\": %.3f, \"staged_speedup\": %.3f, \
                \"filter_hits\": %d, \"filter_fallbacks\": %d, \
                \"fallback_rate\": %.4f, \"staged_hits\": %d, \
                \"staged_int_hits\": %d, \"staged_fallbacks\": %d, \
                \"staged_fallback_rate\": %.4f, \"preds\": [%s]}%s\n"
               e.n e.d e.exact_ms e.filtered_ms e.staged_ms
               (speedup e.exact_ms e.filtered_ms)
               (speedup e.exact_ms e.staged_ms)
               e.f_hits e.f_fallbacks (f_rate e)
               e.s_hits e.s_int_hits e.s_fallbacks (s_rate e)
               (String.concat ", "
                  (List.map
                     (fun (p, (s : K.stat)) ->
                        Printf.sprintf
                          "{\"pred\": \"%s\", \"hits\": %d, \"int_hits\": \
                           %d, \"fallbacks\": %d}"
                          p s.K.hits s.K.int_hits s.K.fallbacks)
                     e.preds))
               (if i = last then "" else ","))
          entries;
        output_string oc "  ]\n}\n")
  with
  | Ok () ->
    Printf.printf "  wrote BENCH_E13.json (%d entries)\n" (List.length entries)
  | Error msg -> Printf.printf "  BENCH_E13.json NOT written: %s\n" msg

let run () =
  (* n >= (d+2)f + 1, so d=3 starts at n=6. *)
  let entries = List.map measure [ (5, 2); (6, 2); (6, 3); (7, 3) ] in
  Util.print_table
    ~title:
      "E13: exact vs filtered vs staged kernels (cold caches per run)"
    ~header:
      [ "scenario"; "exact ms"; "filt ms"; "staged ms"; "stage2 hits";
        "fb rate" ]
    ~widths:[22; 9; 9; 10; 12; 8]
    (List.map
       (fun e ->
          [ Printf.sprintf "n=%d f=1 d=%d seed=42" e.n e.d;
            Printf.sprintf "%.1f" e.exact_ms;
            Printf.sprintf "%.1f" e.filtered_ms;
            Printf.sprintf "%.1f" e.staged_ms;
            Printf.sprintf "%d" e.s_int_hits;
            Printf.sprintf "%.1f%%" (100.0 *. s_rate e) ])
       entries);
  emit_json entries
