(* E15 — serving-daemon throughput and decision latency.

   Drives the sharded multi-instance daemon (lib/serve) through three
   load phases and records BENCH_E15.json:

   - warmup:    a short mixed closed loop (shapes from
                Workload.default_mix, including crash-recovery
                instances) that also populates the caches;
   - sustained: the headline closed loop — >= 1000 concurrent
                n=6/f=1/d=2 instances held in flight until the
                completion target, the throughput measurement;
   - open-loop: fixed arrivals per pump regardless of completions,
                the latency-under-arrival-pressure measurement.

   Every completed instance is graded against Theorem 2 on the spot;
   any violation fails the experiment (a throughput number over wrong
   decisions would be worthless). Fast mode shrinks the targets so
   the phase structure still runs in seconds. *)

module Server = Serve.Server
module Workload = Serve.Workload

let sustained_shape = { Workload.n = 6; f = 1; d = 2; recover = false }

let run () =
  let fast = Util.fast in
  let server = Server.create ~fuel:64 () in
  let rng = Runtime.Rng.create 2026 in
  let warmup =
    Workload.closed_loop ~server ~rng ~mix:Workload.default_mix
      ~label:"warmup" ~first_id:0
      ~concurrency:(if fast then 16 else 64)
      ~total:(if fast then 40 else 200)
      ()
  in
  let sustained =
    Workload.closed_loop ~server ~rng ~mix:[ sustained_shape ]
      ~label:"sustained" ~first_id:1_000_000
      ~concurrency:(if fast then 50 else 1000)
      ~total:(if fast then 60 else 1100)
      ()
  in
  let open_loop =
    Workload.open_loop ~server ~rng ~mix:Workload.default_mix
      ~label:"open-loop" ~first_id:2_000_000
      ~per_pump:(if fast then 2 else 5)
      ~pumps:(if fast then 10 else 40)
      ()
  in
  let phases = [ warmup; sustained; open_loop ] in
  Util.print_table ~title:"E15: serving daemon (closed/open loop)"
    ~header:
      [ "phase"; "instances"; "wall_s"; "inst/s"; "p50_ms"; "p99_ms";
        "max_ms"; "inflight<="; "violations" ]
    ~widths:[ 10; 9; 8; 8; 8; 8; 8; 10; 10 ]
    (List.map
       (fun (p : Workload.phase) ->
          [ p.Workload.label;
            string_of_int p.Workload.instances;
            Util.f3 p.Workload.wall_s;
            Printf.sprintf "%.1f" p.Workload.throughput_ips;
            Printf.sprintf "%.1f" (p.Workload.latency_p50_s *. 1e3);
            Printf.sprintf "%.1f" (p.Workload.latency_p99_s *. 1e3);
            Printf.sprintf "%.1f" (p.Workload.latency_max_s *. 1e3);
            string_of_int p.Workload.max_inflight;
            string_of_int (List.length p.Workload.grade_failures) ])
       phases);
  List.iter
    (fun (p : Workload.phase) ->
       List.iter
         (fun msg -> Printf.printf "  GRADE FAIL [%s] %s\n" p.Workload.label msg)
         p.Workload.grade_failures)
    phases;
  (* The committed artifact records a full-mode run; fast mode still
     writes one so the pipeline is exercised either way. *)
  (match
     Obs.Sink.write_file ~path:"BENCH_E15.json" (fun oc ->
         Printf.fprintf oc
           "{\n  \"experiment\": \"e15\",\n  \"mode\": \"%s\",\n\
           \  \"shards\": %d,\n  \"sustained_shape\": \
            {\"n\": 6, \"f\": 1, \"d\": 2},\n  \"phases\": [\n"
           (if fast then "fast" else "full")
           (Server.shards server);
         let last = List.length phases - 1 in
         List.iteri
           (fun i (p : Workload.phase) ->
              Printf.fprintf oc
                "    {\"label\": \"%s\", \"instances\": %d, \"wall_s\": \
                 %.3f, \"throughput_ips\": %.2f, \"latency_p50_ms\": %.2f, \
                 \"latency_p99_ms\": %.2f, \"latency_max_ms\": %.2f, \
                 \"max_inflight\": %d, \"grade_failures\": %d}%s\n"
                p.Workload.label p.Workload.instances p.Workload.wall_s
                p.Workload.throughput_ips
                (p.Workload.latency_p50_s *. 1e3)
                (p.Workload.latency_p99_s *. 1e3)
                (p.Workload.latency_max_s *. 1e3)
                p.Workload.max_inflight
                (List.length p.Workload.grade_failures)
                (if i = last then "" else ","))
           phases;
         output_string oc "  ]\n}\n")
   with
   | Ok () -> Printf.printf "  wrote BENCH_E15.json (%d phases)\n" (List.length phases)
   | Error msg -> Printf.printf "  BENCH_E15.json NOT written: %s\n" msg);
  let violations =
    List.concat_map (fun p -> p.Workload.grade_failures) phases
  in
  if violations <> [] then begin
    Printf.printf "  E15 FAILED: %d Theorem 2 violation(s) under load\n"
      (List.length violations);
    exit 1
  end
