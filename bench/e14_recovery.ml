(* E14 — Recovery cost vs log length and checkpoint cadence.

   One process crashes after a swept number of deliveries (the WAL
   holds one entry per delivery, so the receive budget IS the log
   length at crash time) and rejoins after a short delay. The [Strict]
   sync mode makes the whole prefix durable, so replay cost is pure:
   snapshot restore from the last checkpoint plus re-application of
   the tail. Sweeping the checkpoint cadence separates the two — at
   [checkpoint_every = 1] the tail is at most one event and recovery
   cost is the snapshot restore alone; with sparse checkpoints the
   tail replay dominates and grows with the budget.

   Timing comes from the "cc.recover" profiler span (the revival
   callback is instrumented in Cc); each measurement is the best of
   three profiled runs. Results land in BENCH_E14.json. *)

module Q = Numeric.Q
module Crash = Runtime.Crash

type entry = {
  budget : int;            (* deliveries before the crash = log length *)
  checkpoint_every : int;
  recover_ms : float;      (* best-of-reps "cc.recover" inclusive time *)
  run_ms : float;          (* same run, wall clock end to end *)
}

let spec ~budget ~checkpoint_every =
  let config =
    Chc.Config.make ~n:7 ~f:1 ~d:2 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let rng = Runtime.Rng.create 42 in
  let inputs = Chc.Scenario.random_inputs ~config ~rng () in
  let crash = Array.make 7 Crash.Never in
  crash.(0) <-
    Crash.Crash_recover
      { trigger = Crash.Receives budget; delay = 10; keep = 0 };
  let t =
    Chc.Scenario.make ~config ~inputs ~crash
      ~scheduler:Runtime.Scheduler.random_uniform ~seed:42
      ~wal:{ Runtime.Wal.checkpoint_every; sync = Runtime.Wal.Strict }
      ()
  in
  Chc.Scenario.ensure_crashes t

let recover_total summary =
  match List.assoc_opt "cc.recover" summary with
  | Some (s : Obs.Prof.stat) -> s.Obs.Prof.total_ns
  | None -> 0.0

let measure ~budget ~checkpoint_every =
  let t = spec ~budget ~checkpoint_every in
  let reps = if Util.fast then 1 else 3 in
  let best_rec = ref infinity and best_run = ref infinity in
  for _ = 1 to reps do
    Parallel.Memo.clear_all ();
    Obs.Prof.reset ();
    Obs.Prof.set_enabled true;
    let t0 = Unix.gettimeofday () in
    let r = Chc.Executor.run t in
    let run_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
    Obs.Prof.set_enabled false;
    let rec_ms = recover_total (Obs.Prof.summary ()) /. 1e6 in
    Obs.Prof.reset ();
    if r.Chc.Executor.recovered <> [ 0 ] then
      failwith "e14: process 0 did not recover";
    if not r.Chc.Executor.decision_stable then
      failwith "e14: strict sync must keep decisions stable";
    if rec_ms < !best_rec then best_rec := rec_ms;
    if run_ms < !best_run then best_run := run_ms
  done;
  { budget; checkpoint_every; recover_ms = !best_rec; run_ms = !best_run }

let emit_json entries =
  match
    Obs.Sink.write_file ~path:"BENCH_E14.json" (fun oc ->
        output_string oc
          "{\n  \"experiment\": \"e14\",\n  \"unit\": \"ms\",\n\
          \  \"results\": [\n";
        let last = List.length entries - 1 in
        List.iteri
          (fun i e ->
             Printf.fprintf oc
               "    {\"budget\": %d, \"checkpoint_every\": %d, \
                \"recover_ms\": %.4f, \"run_ms\": %.2f}%s\n"
               e.budget e.checkpoint_every e.recover_ms e.run_ms
               (if i = last then "" else ","))
          entries;
        output_string oc "  ]\n}\n")
  with
  | Ok () -> print_endline "  wrote BENCH_E14.json"
  | Error msg -> Printf.printf "  BENCH_E14.json NOT written: %s\n" msg

let run () =
  let budgets =
    if Util.fast then [ 10; 40; 120 ] else [ 10; 20; 40; 80; 120; 160 ]
  in
  let cadences = if Util.fast then [ 1; 16 ] else [ 1; 4; 16; 64 ] in
  let entries =
    List.concat_map
      (fun budget ->
         List.map
           (fun checkpoint_every -> measure ~budget ~checkpoint_every)
           cadences)
      budgets
  in
  Util.print_table ~title:"E14: recovery cost vs log length"
    ~header:[ "budget"; "ckpt-every"; "recover ms"; "run ms" ]
    ~widths:[ 6; 10; 10; 8 ]
    (List.map
       (fun e ->
          [ string_of_int e.budget;
            string_of_int e.checkpoint_every;
            Util.f3 e.recover_ms;
            Util.f3 e.run_ms ])
       entries);
  emit_json entries
