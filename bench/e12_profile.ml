(* E12 — Phase breakdown and causal critical paths vs scheduler
   strategy (n=6, f=1, d=3).

   Two complementary views of the same configuration under four
   adversaries:

   - the causal skeleton (Obs.Causal), computed from the deterministic
     trace: total scheduler steps, the longest critical message chain
     gating any decision, and the mean decide step — all in scheduler
     steps, so the columns are exact and pool-size invariant;

   - the wall-clock phase breakdown (Obs.Prof spans): how the
     execution's compute time splits between the round-0 Tverberg
     intersection and the per-round L-operator averaging, plus the
     share spent inside the geometry kernels.

   The contrast is the point of the experiment: adversaries reshuffle
   the causal columns (more steps, longer chains under lag) while the
   phase split stays a property of the geometry, not the schedule. *)

module Q = Numeric.Q
module Executor = Chc.Executor

let schedulers = [ "random"; "round-robin"; "lifo"; "lag" ]

let config () =
  Chc.Config.make ~n:6 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one

let spec_for name =
  let faulty = [ 0 ] in
  match Chc.Cli.parse_scheduler ~faulty name with
  | Error msg -> failwith ("e12: " ^ msg)
  | Ok scheduler ->
    Executor.default_spec ~config:(config ()) ~seed:42 ~faulty ~scheduler ()

let total_of summary name =
  match List.assoc_opt name summary with
  | Some (s : Obs.Prof.stat) -> s.Obs.Prof.total_ns
  | None -> 0.0

let geometry_total summary =
  List.fold_left
    (fun acc (name, (s : Obs.Prof.stat)) ->
       if String.length name >= 9 && String.sub name 0 9 = "geometry."
          || String.length name >= 7 && String.sub name 0 7 = "hullnd."
       then acc +. s.Obs.Prof.total_ns
       else acc)
    0.0 summary

let run () =
  let rows =
    List.map
      (fun name ->
         let spec = spec_for name in
         (* Causal view: schedule-derived, deterministic. *)
         let trace = Obs.Trace.create () in
         ignore (Executor.run ~trace spec);
         let causal = Obs.Causal.analyze ~n:6 trace in
         let decided, decide_steps =
           Array.fold_left
             (fun (k, acc) (p : Obs.Causal.process) ->
                match p.Obs.Causal.decide_step with
                | Some s -> (k + 1, acc + s)
                | None -> (k, acc))
             (0, 0) causal.Obs.Causal.processes
         in
         let mean_decide =
           if decided = 0 then 0.0
           else float_of_int decide_steps /. float_of_int decided
         in
         (* Wall-clock view: one profiled re-execution. *)
         Obs.Prof.reset ();
         Obs.Prof.set_enabled true;
         ignore (Executor.run spec);
         Obs.Prof.set_enabled false;
         let summary = Obs.Prof.summary () in
         Obs.Prof.reset ();
         (* geom sums every geometry/hull span in the profiled window,
            including the report's verification geometry (correct hull,
            Hausdorff agreement, I_Z optimality) that runs after
            cc.execute returns — so it can exceed exec, and it shrinks
            to ~0 on later rows as the memo tables warm up across
            schedules with identical inputs. *)
         [ name;
           string_of_int causal.Obs.Causal.total_steps;
           string_of_int (Obs.Causal.max_chain_length causal);
           Printf.sprintf "%d/6" decided;
           Printf.sprintf "%.0f" mean_decide;
           Printf.sprintf "%.1f" (total_of summary "cc.round0" /. 1e6);
           Printf.sprintf "%.1f" (total_of summary "cc.round" /. 1e6);
           Printf.sprintf "%.1f" (total_of summary "cc.execute" /. 1e6);
           Printf.sprintf "%.1f" (geometry_total summary /. 1e6) ])
      schedulers
  in
  Util.print_table
    ~title:
      "E12: causal critical paths and phase breakdown vs adversary \
       (n=6 f=1 d=3, seed 42; steps/chain exact, ms wall-clock)"
    ~header:
      [ "scheduler"; "steps"; "max-chain"; "decided"; "mean-dec";
        "round0_ms"; "rounds_ms"; "exec_ms"; "geom+verify_ms" ]
    ~widths:[ 12; 6; 9; 7; 8; 9; 9; 8; 14 ]
    rows
