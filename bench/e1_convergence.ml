(* E1 — ε-Agreement convergence (Theorem 2 / Lemma 3).

   Measured: the maximum pairwise Hausdorff distance between the
   fault-free processes' polytopes after each round t, for several
   system sizes. The paper proves the envelope Ω·(1−1/n)^t; the shape
   to reproduce is geometric decay at rate (1−1/n), i.e. slower decay
   for larger n, with every measured point below its envelope. *)

module Q = Numeric.Q
module Executor = Chc.Executor
module Cc = Chc.Cc

(* Per-round spread comes from the observability layer
   (Executor.round_metrics): the diameter column over the first three
   fault-free witnesses — exact Hausdorff on the large intermediate
   polygons is costly, and three witnesses already exhibit the decay
   shape. *)
let round_diameters ~faulty result =
  Executor.round_metrics ~witnesses:3 ~faulty result

let diameter_at metrics round =
  match
    List.find_opt (fun r -> r.Obs.Report.round = round) metrics
  with
  | Some r -> r.Obs.Report.diameter
  | None -> None

(* A run whose round-0 polytopes actually differ (positive initial
   spread). Convergence is only visible when they do; under the
   stable-vector round 0, the coarse schedulers of this harness almost
   never split the views (a measurement in its own right — the
   primitive needs a surgically phased adversary to diverge, see the
   scripted split in the stable-vector tests), so the run here uses the
   naive round-0 variant with a mid-broadcast crash: the averaging
   dynamics that Lemma 3 / Theorem 2 analyze — the object of this
   experiment — are identical in both variants; only the starting
   polytopes differ. *)
let spread_run ~config =
  let n = config.Chc.Config.n in
  (* Two faulty processes: 0 crashes two sends into round 0 (splitting
     the collected input sets), 1 keeps running with its incorrect
     input. The survivor count n - 1 then exceeds the freeze threshold
     n - f, so different processes keep freezing different round
     multisets and the disagreement decays gradually instead of
     collapsing after one round. *)
  let crash_of seed =
    let spec =
      Executor.default_spec ~config ~seed ~faulty:[0; 1] ~round0:`Naive ()
    in
    let crash = Array.make n Runtime.Crash.Never in
    crash.(0) <- Runtime.Crash.After_sends 2;
    { spec with Executor.crash }
  in
  let spread_of_result ~faulty result t =
    match diameter_at (round_diameters ~faulty result) t with
    | Some d -> d
    | None -> 0.0
  in
  (* Seed scanning on the real (deep) configuration with the full
     grading is expensive; probe with a loose ε and the raw protocol
     runner first — whether the disagreement splits is decided by the
     execution prefix (round 0 through round 2), which does not depend
     on t_end. *)
  let probe_cfg =
    Chc.Config.make ~n ~f:config.Chc.Config.f ~d:config.Chc.Config.d
      ~eps:(Q.of_int 8) ~lo:config.Chc.Config.lo ~hi:config.Chc.Config.hi
  in
  let rec find seed =
    if seed > 500 then failwith "E1: no view-splitting schedule found"
    else begin
      let spec = crash_of seed in
      let probe =
        Chc.Cc.execute ~round0:`Naive ~config:probe_cfg
          ~inputs:spec.Executor.inputs ~crash:spec.Executor.crash
          ~scheduler:spec.Executor.scheduler ~seed ()
      in
      let faulty = Chc.Cc.fault_set spec.Executor.crash in
      if spread_of_result ~faulty probe 0 > 0.0
         && spread_of_result ~faulty probe 2 > 0.0
      then begin
        (* Full-depth protocol run, without the (expensive) grading —
           E1/E2 only consume the per-round history. *)
        let result =
          Chc.Cc.execute ~round0:`Naive ~config
            ~inputs:spec.Executor.inputs ~crash:spec.Executor.crash
            ~scheduler:spec.Executor.scheduler ~seed ()
        in
        if spread_of_result ~faulty result 2 > 0.0
        then (faulty, result)
        else find (seed + 1)
      end
      else find (seed + 1)
    end
  in
  find 1

(* E2 reuses E1's runs; memoize by (n, eps). *)
let spread_cache : (int * string, int list * Cc.result) Hashtbl.t = Hashtbl.create 8

let spread_run ~config =
  let key =
    (config.Chc.Config.n, Q.to_string config.Chc.Config.eps)
  in
  match Hashtbl.find_opt spread_cache key with
  | Some r -> r
  | None ->
    let r = spread_run ~config in
    Hashtbl.add spread_cache key r;
    r

let run () =
  let eps = Q.of_ints 1 10 in
  let ns = [9; 11] in
  let results =
    List.map
      (fun n ->
         let config = Chc.Config.make ~n ~f:2 ~d:2 ~eps ~lo:Q.zero ~hi:Q.one in
         let (faulty, result) = spread_run ~config in
         (n, config, round_diameters ~faulty result, result))
      ns
  in
  let t_max =
    List.fold_left
      (fun acc (_, _, _, result) -> Stdlib.max acc result.Cc.t_end)
      0 results
  in
  let rows =
    List.filter_map
      (fun t ->
         if t <= 6 || t mod 3 = 0 || t = t_max then
           Some
             (string_of_int t
              :: List.concat_map
                (fun (_n, config, metrics, result) ->
                   let cell =
                     match diameter_at metrics t with
                     | Some v -> Util.f6 v
                     | None -> if t > result.Cc.t_end then "-" else "?"
                   in
                   let bound =
                     (* anchor the envelope at the measured round-0 spread *)
                     match diameter_at metrics 0 with
                     | Some d0 -> Util.f6 (d0 *. Chc.Bounds.contraction_at config t)
                     | None -> "?"
                   in
                   [cell; bound])
                results)
         else None)
      (List.init (t_max + 1) Fun.id)
  in
  let header =
    "t"
    :: List.concat_map
      (fun n -> [Printf.sprintf "dH n=%d" n; Printf.sprintf "env n=%d" n])
      ns
  in
  let widths = List.map (fun h -> Stdlib.max 10 (String.length h)) header in
  Util.print_table
    ~title:"E1: max pairwise Hausdorff distance vs round (d=2, f=2, eps=0.1)"
    ~header ~widths rows;
  (* Shape assertions: decay, and the final spread under eps. *)
  List.iter
    (fun (n, _, metrics, result) ->
       let d0 = diameter_at metrics 0 in
       let dend = diameter_at metrics result.Cc.t_end in
       match d0, dend with
       | Some a, Some b when a > 0.0 ->
         if b <= 1e-12 then
           Printf.printf
             "  n=%d: dH decayed %.6f -> 0 (exact) over %d rounds (< eps: true)\n"
             n a result.Cc.t_end
         else
           Printf.printf
             "  n=%d: dH decayed %.6f -> %.6f over %d rounds (< eps 0.1: %b)\n"
             n a b result.Cc.t_end
             (b < Q.to_float (Q.of_ints 1 25))
       | _ -> Printf.printf "  n=%d: degenerate spread\n" n)
    results
