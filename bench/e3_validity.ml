(* E3 — Validity, ε-agreement and termination (Theorem 2), exhaustively
   checked across randomized executions: random inputs, random crash
   budgets (including mid-broadcast crashes), and all four adversarial
   schedulers. Every check is exact; the expected "shape" is 100%
   across the board. *)

module Q = Numeric.Q
module Executor = Chc.Executor
module Scheduler = Runtime.Scheduler

let schedulers =
  [ ("random", Scheduler.random_uniform);
    ("round-robin", Scheduler.round_robin);
    ("lifo", Scheduler.lifo_bias);
    ("lag[0]", Scheduler.lag_sources [0]) ]

let sweep ~config ~runs ~sched_name ~scheduler =
  (* Each seed is an independent execution: fan the sweep out over the
     domain pool and fold the per-seed flags back in index order, so
     the totals are identical whatever the worker interleaving. *)
  let flags =
    Parallel.Pool.parallel_map (Parallel.Pool.global ())
      (fun seed ->
         let r =
           Executor.run
             (Executor.default_spec ~config ~seed:(seed * 7919 + 13) ~scheduler ())
         in
         (r.Executor.valid, r.Executor.agreement_ok, r.Executor.terminated))
      (List.init runs (fun i -> i))
  in
  let valid = ref 0 and agree = ref 0 and term = ref 0 in
  List.iter
    (fun (v, a, t) ->
       if v then incr valid;
       if a then incr agree;
       if t then incr term)
    flags;
  [ sched_name;
    Printf.sprintf "n=%d f=%d d=%d" config.Chc.Config.n config.Chc.Config.f
      config.Chc.Config.d;
    Util.pct !term runs; Util.pct !valid runs; Util.pct !agree runs ]

let run () =
  let runs = Util.sweep_size 30 in
  let configs =
    [ Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one;
      Chc.Config.make ~n:7 ~f:2 ~d:1 ~eps:(Q.of_ints 1 20) ~lo:Q.zero ~hi:Q.one;
      Chc.Config.make ~n:6 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one ]
  in
  let rows =
    List.concat_map
      (fun config ->
         List.map
           (fun (sched_name, scheduler) ->
              sweep ~config ~runs ~sched_name ~scheduler)
           schedulers)
      configs
  in
  Util.print_table
    ~title:
      (Printf.sprintf
         "E3: Theorem-2 properties over %d randomized executions per cell" runs)
    ~header:["scheduler"; "config"; "terminated"; "valid"; "eps-agree"]
    ~widths:[12; 16; 10; 10; 10]
    rows
