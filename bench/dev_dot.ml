(* Scratch microbenchmark for the staged dot ladder. Not wired into
   any alias; run with: dune exec bench/dev_dot.exe *)

module Q = Numeric.Q
module B = Numeric.Bigint
module Grid = Numeric.Grid

let big_q bits seed =
  (* pseudo-random [bits]-bit integer rational, den = 1 *)
  let st = Random.State.make [| seed |] in
  let rec go acc b =
    if b <= 0 then acc
    else
      go
        (B.add (B.mul_int acc (1 lsl 20)) (B.of_int (Random.State.int st (1 lsl 20))))
        (b - 20)
  in
  Q.of_bigint (go B.one bits)

let time name n f =
  let t0 = Unix.gettimeofday () in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + f ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "%-28s %8d calls  %8.1f ns/call   (acc %d)\n" name n
    (dt /. float_of_int n *. 1e9) !acc

let () =
  (* coordinates ~420 bits, normals ~850 bits, offset ~1270 bits *)
  let p = Array.init 3 (fun i -> big_q 420 (i + 1)) in
  let a = Array.init 3 (fun i -> big_q 850 (i + 10)) in
  let b = big_q 1260 99 in
  Numeric.Kernel.with_mode Numeric.Kernel.Staged (fun () ->
      time "dot nonzero (cold sc)" 1 (fun () ->
          match Grid.dot_minus_sign a p b with Some s -> s | None -> 0);
      time "dot nonzero (warm sc)" 1_000_000 (fun () ->
          match Grid.dot_minus_sign a p b with Some s -> s | None -> 0);
      time "filter dot (warm)" 1_000_000 (fun () ->
          Numeric.Filter.sign_of_dot_minus a p b);
      (* true zero: b = a . p exactly *)
      let bz =
        let acc = ref Q.zero in
        for i = 0 to 2 do
          acc := Q.add !acc (Q.mul a.(i) p.(i))
        done;
        !acc
      in
      time "dot true-zero (cold rs)" 1 (fun () ->
          match Grid.dot_minus_sign a p bz with Some s -> s | None -> 99);
      time "dot true-zero (warm rs)" 100_000 (fun () ->
          match Grid.dot_minus_sign a p bz with Some s -> s | None -> 99))
