(* E4 — Optimality (Lemma 6 / Theorem 3): the witness polytope I_Z is
   contained in every fault-free process's polytope at every round,
   and the decided region is no smaller than I_Z. We also report how
   tight the containment is by comparing areas: vol(I_Z) / vol(output)
   — Theorem 3 says no algorithm can beat I_Z, and Algorithm CC's
   output converges down toward it. Expected shape: 100% containment,
   ratio close to 1 (from below). *)

module Q = Numeric.Q
module Executor = Chc.Executor

let run () =
  let runs = Util.sweep_size 25 in
  let configs =
    [ ("n=5 f=1 d=2", Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one);
      ("n=7 f=1 d=2", Chc.Config.make ~n:7 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one);
      ("n=7 f=2 d=1", Chc.Config.make ~n:7 ~f:2 ~d:1 ~eps:(Q.of_ints 1 20) ~lo:Q.zero ~hi:Q.one) ]
  in
  let rows =
    List.map
      (fun (label, config) ->
         (* Independent seeds: parallel sweep, merged in seed order so
            the reported mean is reproducible bit-for-bit. *)
         let per_seed =
           Parallel.Pool.parallel_map (Parallel.Pool.global ())
             (fun seed ->
                let r =
                  Executor.run
                    (Executor.default_spec ~config ~seed:(seed * 104729 + 7) ())
                in
                let ratio =
                  match r.Executor.iz_volume, r.Executor.min_output_volume with
                  | Some vi, Some vo when Q.sign vo > 0 ->
                    Some (Q.to_float (Q.div vi vo))
                  | _ -> None
                in
                (r.Executor.optimal, ratio))
             (List.init runs (fun i -> i))
         in
         let contained =
           List.length (List.filter (fun (o, _) -> o) per_seed)
         in
         let ratios = List.filter_map snd per_seed in
         let mean =
           match ratios with
           | [] -> "n/a (degenerate)"
           | l -> Util.f4 (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))
         in
         [ label; Util.pct contained runs; mean ])
      configs
  in
  Util.print_table
    ~title:
      (Printf.sprintf
         "E4: I_Z containment (Lemma 6) over %d runs; tightness vol(I_Z)/vol(out)"
         runs)
    ~header:["config"; "I_Z contained"; "mean tightness"]
    ~widths:[14; 14; 18]
    rows
