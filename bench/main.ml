(* The experiment harness: regenerates every table of the evaluation
   (the paper is a theory contribution with no tables/figures of its
   own; E1–E10 operationalize each theorem/lemma — see DESIGN.md §4
   and EXPERIMENTS.md for the recorded results).

   Run everything:       dune exec bench/main.exe
   Quick pass:           dune exec bench/main.exe -- --fast
   One experiment:       dune exec bench/main.exe -- e4 e6 *)

let experiments =
  [ ("e1", "convergence envelope (Thm 2/Lemma 3)", E1_convergence.run);
    ("e2", "t_end bound vs measured (eq. 19)", E2_tend.run);
    ("e3", "validity / agreement / termination (Thm 2)", E3_validity.run);
    ("e4", "optimality I_Z containment (Lemma 6/Thm 3)", E4_optimality.run);
    ("e5", "CC vs vector-consensus baseline", E5_cc_vs_vc.run);
    ("e6", "round-0 ablation: stable vector vs naive", E6_ablation.run);
    ("e7", "function optimization (Sec 7/Thm 4)", E7_optimize.run);
    ("e8", "matrix certificates (Thm 1/Claim 1/Lemma 3)", E8_matrix.run);
    ("e9", "resilience frontier and degenerate cases", E9_resilience.run);
    ("e10", "performance microbenchmarks (bechamel)", E10_perf.run);
    ("e12", "phase breakdown + critical paths vs adversary", E12_profile.run);
    ("e13", "filtered-kernel ablation: exact vs interval filter", E13_filter.run);
    ("e14", "crash-recovery cost vs log length (WAL replay)", E14_recovery.run);
    ("e15", "serving daemon throughput/latency (sharded multi-instance)",
     E15_serve.run);
    ("e16", "telemetry overhead: logging/tracing on vs off",
     E16_telemetry.run);
    ("e17", "polytope engine ablation: incremental vs rebuild",
     E17_poly.run);
    ("smoke3d", "fast d=3 execution smoke check", Smoke3d.run) ]

let () =
  let selected =
    (* Strip the harness flags ("--baseline" consumes its value) so
       only experiment ids remain. *)
    let rec strip = function
      | [] -> []
      | "--fast" :: rest -> strip rest
      | "--baseline" :: _ :: rest -> strip rest
      | a :: rest -> a :: strip rest
    in
    strip (List.tl (Array.to_list Sys.argv))
  in
  let chosen =
    if selected = [] then experiments
    else
      List.filter (fun (id, _, _) -> List.mem id selected) experiments
  in
  if chosen = [] then begin
    print_endline "unknown experiment id; available:";
    List.iter (fun (id, desc, _) -> Printf.printf "  %-4s %s\n" id desc)
      experiments;
    exit 1
  end;
  Printf.printf "chc experiment harness%s — %d experiment(s)\n"
    (if Util.fast then " (fast mode)" else "")
    (List.length chosen);
  List.iter
    (fun (id, desc, f) ->
       Printf.printf "\n######## %s: %s\n%!" id desc;
       let t0 = Unix.gettimeofday () in
       f ();
       Printf.printf "  [%s done in %.1fs]\n%!" id (Unix.gettimeofday () -. t0))
    chosen
