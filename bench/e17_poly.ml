(* E17 — the incremental polytope engine vs the from-scratch rebuild.

   PR 10's tentpole: round t+1's L-operator reuses round t's hull/facet
   structure (arena-cached duals, warm-started beneath–beyond,
   certified float-guided intersection) instead of rebuilding every
   polytope from scratch. This experiment prices exactly that ablation
   on the protocol's hardest committed shape — the n=7/f=1/d=3
   full execution that e10 ratchets — by running the identical
   scenario under CHC_POLY=rebuild and CHC_POLY=incremental.

   Methodology mirrors e16: runs are interleaved (rebuild/incremental,
   [rounds] times), COLD (memo tables flushed before every execution,
   so the speedup measured is the engine's structure reuse plus its
   certified fast paths, not a memo artifact), under the staged
   kernel — the same conditions as the e10 cc/full-execution-n7-d3
   entry. Each engine keeps its best wall clock.

   The ratchet: incremental must stay at least CHC_E17_MIN_SPEEDUP
   (default 1.6x) faster than rebuild. The rebuild leg is the old
   engine verbatim, so this floor is the PR's perf win enforced
   against its own baseline on whatever machine CI runs. *)

module Q = Numeric.Q
module PE = Geometry.Poly_engine

let min_speedup =
  match Sys.getenv_opt "CHC_E17_MIN_SPEEDUP" with
  | Some s -> (try float_of_string s with Failure _ -> 1.6)
  | None -> 1.6

let label = function PE.Rebuild -> "rebuild" | PE.Incremental -> "incremental"

let run () =
  let config =
    Chc.Config.make ~n:7 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Chc.Executor.default_spec ~config ~seed:42 () in
  let run_once mode =
    Parallel.Memo.clear_all ();
    PE.with_mode mode @@ fun () ->
    Numeric.Kernel.with_mode Numeric.Kernel.Staged @@ fun () ->
    let t0 = Unix.gettimeofday () in
    let r = Chc.Executor.run spec in
    let dt = Unix.gettimeofday () -. t0 in
    if not (r.Chc.Executor.terminated && r.Chc.Executor.valid
            && r.Chc.Executor.agreement_ok && r.Chc.Executor.optimal)
    then begin
      Printf.printf "  E17 FAILED: Theorem 2 violation under %s engine\n"
        (label mode);
      exit 1
    end;
    dt
  in
  (* untimed warmup: grid/pool first-touch costs must not land on
     whichever engine runs first *)
  ignore (run_once PE.Incremental : float);
  let rounds = if Util.fast then 3 else 5 in
  let engines = [ PE.Rebuild; PE.Incremental ] in
  let runs =
    List.concat
      (List.init rounds (fun _ ->
           List.map (fun m -> (m, run_once m)) engines))
  in
  let best m =
    List.fold_left
      (fun acc (m', dt) -> if m' = m && dt < acc then dt else acc)
      infinity runs
  in
  let reb = best PE.Rebuild in
  let inc = best PE.Incremental in
  let speedup = reb /. inc in
  Util.print_table
    ~title:
      (Printf.sprintf
         "E17: polytope engine ablation, cc/full-execution-n7-d3 (best of %d \
          cold runs, staged kernel)"
         rounds)
    ~header:[ "engine"; "ms/exec"; "speedup" ] ~widths:[ 12; 10; 8 ]
    [ [ "rebuild"; Util.f3 (reb *. 1e3); "1.00" ];
      [ "incremental"; Util.f3 (inc *. 1e3); Printf.sprintf "%.2f" speedup ] ];
  (* Engine telemetry for the run log: the chc_poly_* counters say how
     the incremental wins were realized (float-certified hulls, warm
     starts, arena hits) and that nothing fell back. *)
  let counters =
    List.filter_map
      (fun s ->
         match s.Obs.Metrics.value with
         | Obs.Metrics.Counter v
           when String.length s.Obs.Metrics.metric >= 9
             && String.sub s.Obs.Metrics.metric 0 9 = "chc_poly_" ->
           let l =
             String.concat ","
               (List.map (fun (k, v) -> k ^ "=" ^ v) s.Obs.Metrics.labels)
           in
           Some (Printf.sprintf "%s{%s}=%d" s.Obs.Metrics.metric l v)
         | _ -> None)
      (Obs.Metrics.snapshot_all ())
  in
  Printf.printf "  counters: %s\n" (String.concat " " counters);
  (match
     Obs.Sink.write_file ~path:"BENCH_E17.json" (fun oc ->
         Printf.fprintf oc
           "{\n  \"experiment\": \"e17\",\n  \"mode\": \"%s\",\n\
           \  \"shape\": {\"n\": 7, \"f\": 1, \"d\": 3},\n\
           \  \"rounds\": %d,\n  \"min_speedup\": %.2f,\n\
           \  \"rebuild_ms\": %.3f,\n  \"incremental_ms\": %.3f,\n\
           \  \"speedup\": %.2f\n}\n"
           (if Util.fast then "fast" else "full")
           rounds min_speedup (reb *. 1e3) (inc *. 1e3) speedup)
   with
   | Ok () -> print_endline "  wrote BENCH_E17.json"
   | Error msg -> Printf.printf "  BENCH_E17.json NOT written: %s\n" msg);
  if speedup < min_speedup then begin
    Printf.printf
      "  E17 FAILED: incremental %.1f ms only %.2fx faster than rebuild \
       %.1f ms (floor %.2fx; override CHC_E17_MIN_SPEEDUP)\n"
      (inc *. 1e3) speedup (reb *. 1e3) min_speedup;
    exit 1
  end;
  Printf.printf "  ratchet ok: incremental %.1f ms vs rebuild %.1f ms — \
                 %.2fx >= %.2fx floor\n"
    (inc *. 1e3) (reb *. 1e3) speedup min_speedup
