(* A single fast d=3 execution with every Theorem-2/Theorem-3 check —
   the CI smoke test for the d>=3 geometry kernel (see the bench-smoke
   alias in bench/dune). Fails loudly so a broken hot path cannot slip
   through a green build. *)

module Q = Numeric.Q
module Executor = Chc.Executor

let run () =
  let config =
    Chc.Config.make ~n:6 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let trace = Obs.Trace.create () in
  let r = Executor.run ~trace (Executor.default_spec ~config ~seed:42 ()) in
  Printf.printf
    "  smoke3d (n=6 f=1 d=3): terminated=%b valid=%b eps-agree=%b optimal=%b\n"
    r.Executor.terminated r.Executor.valid r.Executor.agreement_ok
    r.Executor.optimal;
  (* The kernel-counter half of the observability layer: per-round
     message/byte/vertex rows (diameters skipped — exact d=3 Hausdorff
     per round would dominate the smoke budget), cache hit rates and
     pool utilization, so a CI log shows what the kernel actually
     did. *)
  Obs.Report.print stdout (Executor.observe ~trace r);
  if not
      (r.Executor.terminated && r.Executor.valid && r.Executor.agreement_ok
       && r.Executor.optimal)
  then failwith "smoke3d: d=3 execution lost a Theorem-2/Theorem-3 property"
