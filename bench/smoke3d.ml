(* A single fast d=3 execution with every Theorem-2/Theorem-3 check —
   the CI smoke test for the d>=3 geometry kernel (see the bench-smoke
   alias in bench/dune). Fails loudly so a broken hot path cannot slip
   through a green build.

   The same checked run doubles as the kernel-equivalence gate: the
   filtered interval kernel must be an observationally perfect
   stand-in for exact rationals — byte-identical execution transcripts
   and equal decision polytopes. The polytope-engine gate is the same
   bar for the incremental engine against the from-scratch rebuild. *)

module Q = Numeric.Q
module Executor = Chc.Executor

let run () =
  let config =
    Chc.Config.make ~n:6 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Executor.default_spec ~config ~seed:42 () in
  let trace = Obs.Trace.create () in
  let r = Executor.run ~trace spec in
  Printf.printf
    "  smoke3d (n=6 f=1 d=3): terminated=%b valid=%b eps-agree=%b optimal=%b\n"
    r.Executor.terminated r.Executor.valid r.Executor.agreement_ok
    r.Executor.optimal;
  (* The kernel-counter half of the observability layer: per-round
     message/byte/vertex rows (diameters skipped — exact d=3 Hausdorff
     per round would dominate the smoke budget), cache hit rates and
     pool utilization, so a CI log shows what the kernel actually
     did. *)
  Obs.Report.print stdout (Executor.observe ~trace r);
  if not
      (r.Executor.terminated && r.Executor.valid && r.Executor.agreement_ok
       && r.Executor.optimal)
  then failwith "smoke3d: d=3 execution lost a Theorem-2/Theorem-3 property";
  (* Kernel equivalence. Memo tables are bypassed so a result cached
     by one kernel can't be served to the other and mask a
     divergence. *)
  let run_under m =
    Parallel.Memo.with_bypass (fun () ->
        let trace = Obs.Trace.create () in
        let r = Executor.run ~trace { spec with Chc.Scenario.kernel = Some m } in
        (r, Obs.Trace.to_jsonl trace))
  in
  Numeric.Kernel.reset_stats ();
  let exact, exact_tr = run_under Numeric.Kernel.Exact in
  let outputs (r : Executor.report) = r.Executor.result.Chc.Cc.outputs in
  List.iter
    (fun m ->
       let name = Numeric.Kernel.to_string m in
       let other, other_tr = run_under m in
       if not (String.equal exact_tr other_tr) then
         failwith
           (Printf.sprintf
              "smoke3d: %s-kernel transcript differs from exact (trace bytes)"
              name);
       Array.iteri
         (fun i o ->
            match (o, (outputs other).(i)) with
            | None, None -> ()
            | Some p, Some p' when Geometry.Polytope.equal p p' -> ()
            | _ ->
              failwith
                (Printf.sprintf
                   "smoke3d: kernel divergence — process %d decided different \
                    polytopes under exact vs %s" i name))
         (outputs exact))
    [ Numeric.Kernel.Filtered; Numeric.Kernel.Staged ];
  let { Numeric.Kernel.hits; int_hits; fallbacks } =
    Numeric.Kernel.totals ()
  in
  Printf.printf
    "  kernel equivalence: exact = filtered = staged (transcript %d bytes, \
     filter hits=%d int_hits=%d fallbacks=%d)\n"
    (String.length exact_tr) hits int_hits fallbacks;
  (* Engine equivalence: the incremental engine's certified fast paths
     and structure reuse must be observationally invisible — executor
     reports and traces byte-identical to the rebuild oracle. *)
  let run_engine mode =
    Parallel.Memo.with_bypass (fun () ->
        Geometry.Poly_engine.with_mode mode (fun () ->
            Geometry.Poly_engine.with_handle
              (Geometry.Poly_engine.create_handle ())
              (fun () ->
                 let trace = Obs.Trace.create () in
                 let r = Executor.run ~trace spec in
                 (r, Obs.Trace.to_jsonl trace))))
  in
  let reb, reb_tr = run_engine Geometry.Poly_engine.Rebuild in
  let inc, inc_tr = run_engine Geometry.Poly_engine.Incremental in
  if not (String.equal reb_tr inc_tr) then
    failwith
      "smoke3d: incremental-engine transcript differs from rebuild (trace \
       bytes)";
  let verdict (r : Executor.report) =
    ( r.Executor.terminated, r.Executor.valid, r.Executor.agreement_ok,
      r.Executor.optimal, r.Executor.decision_stable,
      r.Executor.result.Chc.Cc.t_end )
  in
  if verdict reb <> verdict inc
     || not
          (Option.equal Q.equal reb.Executor.agreement2
             inc.Executor.agreement2)
  then failwith "smoke3d: engine divergence — executor reports differ";
  Array.iteri
    (fun i o ->
       match (o, (outputs inc).(i)) with
       | None, None -> ()
       | Some p, Some p' when Geometry.Polytope.equal p p' -> ()
       | _ ->
         failwith
           (Printf.sprintf
              "smoke3d: engine divergence — process %d decided different \
               polytopes under rebuild vs incremental" i))
    (outputs reb);
  Printf.printf
    "  engine equivalence: rebuild = incremental (transcript %d bytes)\n"
    (String.length reb_tr)
