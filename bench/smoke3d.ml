(* A single fast d=3 execution with every Theorem-2/Theorem-3 check —
   the CI smoke test for the d>=3 geometry kernel (see the bench-smoke
   alias in bench/dune). Fails loudly so a broken hot path cannot slip
   through a green build.

   The same checked run doubles as the kernel-equivalence gate: the
   filtered interval kernel must be an observationally perfect
   stand-in for exact rationals — byte-identical execution transcripts
   and equal decision polytopes. *)

module Q = Numeric.Q
module Executor = Chc.Executor

let run () =
  let config =
    Chc.Config.make ~n:6 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Executor.default_spec ~config ~seed:42 () in
  let trace = Obs.Trace.create () in
  let r = Executor.run ~trace spec in
  Printf.printf
    "  smoke3d (n=6 f=1 d=3): terminated=%b valid=%b eps-agree=%b optimal=%b\n"
    r.Executor.terminated r.Executor.valid r.Executor.agreement_ok
    r.Executor.optimal;
  (* The kernel-counter half of the observability layer: per-round
     message/byte/vertex rows (diameters skipped — exact d=3 Hausdorff
     per round would dominate the smoke budget), cache hit rates and
     pool utilization, so a CI log shows what the kernel actually
     did. *)
  Obs.Report.print stdout (Executor.observe ~trace r);
  if not
      (r.Executor.terminated && r.Executor.valid && r.Executor.agreement_ok
       && r.Executor.optimal)
  then failwith "smoke3d: d=3 execution lost a Theorem-2/Theorem-3 property";
  (* Kernel equivalence. Memo tables are bypassed so a result cached
     by one kernel can't be served to the other and mask a
     divergence. *)
  let run_under m =
    Parallel.Memo.with_bypass (fun () ->
        let trace = Obs.Trace.create () in
        let r = Executor.run ~trace { spec with Chc.Scenario.kernel = Some m } in
        (r, Obs.Trace.to_jsonl trace))
  in
  Numeric.Kernel.reset_stats ();
  let exact, exact_tr = run_under Numeric.Kernel.Exact in
  let outputs (r : Executor.report) = r.Executor.result.Chc.Cc.outputs in
  List.iter
    (fun m ->
       let name = Numeric.Kernel.to_string m in
       let other, other_tr = run_under m in
       if not (String.equal exact_tr other_tr) then
         failwith
           (Printf.sprintf
              "smoke3d: %s-kernel transcript differs from exact (trace bytes)"
              name);
       Array.iteri
         (fun i o ->
            match (o, (outputs other).(i)) with
            | None, None -> ()
            | Some p, Some p' when Geometry.Polytope.equal p p' -> ()
            | _ ->
              failwith
                (Printf.sprintf
                   "smoke3d: kernel divergence — process %d decided different \
                    polytopes under exact vs %s" i name))
         (outputs exact))
    [ Numeric.Kernel.Filtered; Numeric.Kernel.Staged ];
  let { Numeric.Kernel.hits; int_hits; fallbacks } =
    Numeric.Kernel.totals ()
  in
  Printf.printf
    "  kernel equivalence: exact = filtered = staged (transcript %d bytes, \
     filter hits=%d int_hits=%d fallbacks=%d)\n"
    (String.length exact_tr) hits int_hits fallbacks
