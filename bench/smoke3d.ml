(* A single fast d=3 execution with every Theorem-2/Theorem-3 check —
   the CI smoke test for the d>=3 geometry kernel (see the bench-smoke
   alias in bench/dune). Fails loudly so a broken hot path cannot slip
   through a green build. *)

module Q = Numeric.Q
module Executor = Chc.Executor

let run () =
  let config =
    Chc.Config.make ~n:6 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let r = Executor.run (Executor.default_spec ~config ~seed:42 ()) in
  Printf.printf
    "  smoke3d (n=6 f=1 d=3): terminated=%b valid=%b eps-agree=%b optimal=%b\n"
    r.Executor.terminated r.Executor.valid r.Executor.agreement_ok
    r.Executor.optimal;
  if not
      (r.Executor.terminated && r.Executor.valid && r.Executor.agreement_ok
       && r.Executor.optimal)
  then failwith "smoke3d: d=3 execution lost a Theorem-2/Theorem-3 property"
