(* E6 — Ablation: stable vector vs naive round 0.

   The naive variant collects the first n−f inputs it hears instead of
   using the stable-vector primitive. Theorem-2 safety survives (the
   convergence phase never used stable vector), but the Containment
   property — the engine behind Lemma 6's I_Z ⊆ h_i[t] — is lost.
   Under mid-broadcast crashes the naive views diverge and the
   optimality certificate fails in a visible fraction of runs, while
   the stable-vector variant never loses it. *)

module Q = Numeric.Q
module Executor = Chc.Executor
module Crash = Runtime.Crash

let run () =
  let runs = Util.sweep_size 40 in
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 4) ~lo:Q.zero ~hi:Q.one
  in
  let sweep round0 =
    (* Seeds are independent; sweep them across the domain pool and
       accumulate the counters from the index-ordered result list. *)
    let flags =
      Parallel.Pool.parallel_map (Parallel.Pool.global ())
        (fun seed ->
           let spec =
             Executor.default_spec ~config ~seed:(seed * 6151 + 3) ~round0 ()
           in
           (* Force a mid-broadcast crash: the faulty process reaches
              only 2 of its 4 peers with its round-0 message. *)
           let crash = Array.make 5 Crash.Never in
           crash.(0) <- Crash.After_sends 2;
           let r = Executor.run { spec with Executor.crash } in
           (r.Executor.optimal, r.Executor.valid, r.Executor.agreement_ok))
        (List.init runs (fun i -> i))
    in
    List.fold_left
      (fun (o, v, a) (ro, rv, ra) ->
         ((if ro then o + 1 else o),
          (if rv then v + 1 else v),
          (if ra then a + 1 else a)))
      (0, 0, 0) flags
  in
  let o_sv, v_sv, a_sv = sweep `Stable_vector in
  let o_na, v_na, a_na = sweep `Naive in
  Util.print_table
    ~title:
      (Printf.sprintf
         "E6: round-0 ablation under mid-broadcast crashes (%d runs each)" runs)
    ~header:["round 0"; "valid"; "eps-agree"; "I_Z optimal"]
    ~widths:[14; 10; 10; 12]
    [ ["stable vector"; Util.pct v_sv runs; Util.pct a_sv runs; Util.pct o_sv runs];
      ["naive collect"; Util.pct v_na runs; Util.pct a_na runs; Util.pct o_na runs] ];
  Printf.printf
    "  stable vector keeps the optimality certificate in every run;\n";
  Printf.printf
    "  the naive variant lost it in %d/%d runs (safety intact in all).\n"
    (runs - o_na) runs
