(* E16 — telemetry overhead: the live plane must be close to free.

   The daemon's operating posture (PR 9) is logging at info with the
   admin plane armed; this experiment prices that posture against a
   dark server. Three configurations over the identical workload
   (closed-loop n=5/f=1/d=2, fresh server each run):

   - off:   no logging, no profiling — the baseline;
   - log:   Obs.Log at Info into a real file appender, flushed after
            every pump (exactly chc_serve's cadence), rate limiter
            opened wide so the cost measured is render+write, not
            drop;
   - trace: log + per-job Prof slices + causal_k slowest-k traces —
            the everything-on worst case.

   Runs are interleaved (off/log/trace, twice) and each config keeps
   its best wall clock, so machine noise hits every config equally.
   The ratchet: logging-enabled throughput must stay within
   CHC_E16_TOLERANCE (default 10%) of logging-off — the acceptance
   bar for shipping telemetry in the serving path. Trace overhead is
   recorded but not gated (profiling is opt-in). *)

module Server = Serve.Server
module Workload = Serve.Workload

let shape = { Workload.n = 5; f = 1; d = 2; recover = false }

let tolerance =
  match Sys.getenv_opt "CHC_E16_TOLERANCE" with
  | Some s -> (try float_of_string s with Failure _ -> 0.10)
  | None -> 0.10

type config = Off | Log | Trace

let label = function Off -> "off" | Log -> "log" | Trace -> "trace"

let run_config cfg ~first_id ~concurrency ~total =
  let log_file =
    Filename.temp_file "chc_e16" (Printf.sprintf "_%s.jsonl" (label cfg))
  in
  let causal_k = if cfg = Trace then 8 else 0 in
  (* slow_s high: a slow-request warn storm under deliberate
     oversubscription would measure the limiter, not the plane *)
  let server = Server.create ~fuel:64 ~slow_s:1e9 ~causal_k () in
  (match cfg with
   | Off -> ()
   | Log | Trace ->
     Obs.Log.open_file ~path:log_file;
     Obs.Log.set_rate ~per_s:1_000_000 ~burst:1_000_000;
     Obs.Log.set_level (Some Obs.Log.Info);
     if cfg = Trace then Obs.Prof.set_enabled true);
  let rng = Runtime.Rng.create (42 + first_id) in
  let on_pump = match cfg with Off -> None | _ -> Some Obs.Log.flush in
  let phase =
    Workload.closed_loop ~server ~rng ~mix:[ shape ] ~label:(label cfg)
      ~first_id ~concurrency ~total ?on_pump ()
  in
  (match cfg with
   | Off -> ()
   | Log | Trace ->
     Obs.Prof.set_enabled false;
     Obs.Prof.reset ();
     Obs.Log.set_level None;
     Obs.Log.close ();
     Obs.Log.set_rate ~per_s:1000 ~burst:1000);
  let log_lines =
    let ic = open_in log_file in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  in
  Sys.remove log_file;
  if phase.Workload.grade_failures <> [] then begin
    Printf.printf "  E16 FAILED: Theorem 2 violation under %s telemetry\n"
      (label cfg);
    exit 1
  end;
  (phase, log_lines)

let run () =
  let fast = Util.fast in
  let concurrency = if fast then 32 else 200 in
  let total = if fast then 80 else 600 in
  (* untimed warmup: first-touch costs (domain pool, memo tables)
     must not land on whichever config runs first *)
  let warm = Server.create ~fuel:64 () in
  let rng = Runtime.Rng.create 7 in
  ignore
    (Workload.closed_loop ~server:warm ~rng ~mix:[ shape ] ~label:"warmup"
       ~first_id:9_000_000 ~concurrency:16 ~total:(if fast then 16 else 48)
       ()
     : Workload.phase);
  let configs = [ Off; Log; Trace ] in
  let rounds = 2 in
  let runs =
    List.concat
      (List.init rounds (fun round ->
           List.mapi
             (fun i cfg ->
                let first_id = 1_000_000 * ((round * 3) + i + 1) in
                (cfg, run_config cfg ~first_id ~concurrency ~total))
             configs))
  in
  let best cfg =
    let of_cfg =
      List.filter_map
        (fun (c, (p, lines)) -> if c = cfg then Some (p, lines) else None)
        runs
    in
    List.fold_left
      (fun (bp, bl) (p, l) ->
         if p.Workload.throughput_ips > bp.Workload.throughput_ips then (p, l)
         else (bp, bl))
      (List.hd of_cfg) (List.tl of_cfg)
  in
  let results = List.map (fun cfg -> (cfg, best cfg)) configs in
  let ips cfg = (fst (snd (List.find (fun (c, _) -> c = cfg) results))).Workload.throughput_ips in
  let overhead_pct cfg = 100. *. (1. -. (ips cfg /. ips Off)) in
  Util.print_table ~title:"E16: telemetry overhead (best of interleaved runs)"
    ~header:
      [ "config"; "instances"; "wall_s"; "inst/s"; "p50_ms"; "p99_ms";
        "overhead%"; "log_lines" ]
    ~widths:[ 8; 9; 8; 9; 8; 8; 9; 9 ]
    (List.map
       (fun (cfg, ((p : Workload.phase), lines)) ->
          [ label cfg;
            string_of_int p.Workload.instances;
            Util.f3 p.Workload.wall_s;
            Printf.sprintf "%.1f" p.Workload.throughput_ips;
            Printf.sprintf "%.1f" (p.Workload.latency_p50_s *. 1e3);
            Printf.sprintf "%.1f" (p.Workload.latency_p99_s *. 1e3);
            Printf.sprintf "%.1f" (overhead_pct cfg);
            string_of_int lines ])
       results);
  (* The committed artifact records a full-mode run; fast mode still
     writes one so the pipeline is exercised either way. *)
  (match
     Obs.Sink.write_file ~path:"BENCH_E16.json" (fun oc ->
         Printf.fprintf oc
           "{\n  \"experiment\": \"e16\",\n  \"mode\": \"%s\",\n\
           \  \"shape\": {\"n\": 5, \"f\": 1, \"d\": 2},\n\
           \  \"concurrency\": %d,\n  \"total\": %d,\n\
           \  \"rounds\": %d,\n  \"tolerance\": %.3f,\n  \"configs\": [\n"
           (if fast then "fast" else "full")
           concurrency total rounds tolerance;
         let last = List.length results - 1 in
         List.iteri
           (fun i (cfg, ((p : Workload.phase), lines)) ->
              Printf.fprintf oc
                "    {\"label\": \"%s\", \"instances\": %d, \"wall_s\": \
                 %.3f, \"throughput_ips\": %.2f, \"latency_p50_ms\": %.2f, \
                 \"latency_p99_ms\": %.2f, \"overhead_pct\": %.2f, \
                 \"log_lines\": %d}%s\n"
                (label cfg) p.Workload.instances p.Workload.wall_s
                p.Workload.throughput_ips
                (p.Workload.latency_p50_s *. 1e3)
                (p.Workload.latency_p99_s *. 1e3)
                (overhead_pct cfg) lines
                (if i = last then "" else ","))
           results;
         output_string oc "  ]\n}\n")
   with
   | Ok () -> print_endline "  wrote BENCH_E16.json (3 configs)"
   | Error msg -> Printf.printf "  BENCH_E16.json NOT written: %s\n" msg);
  (* the ratchet: logging must not tax the serving path *)
  let floor_ips = (1. -. tolerance) *. ips Off in
  if ips Log < floor_ips then begin
    Printf.printf
      "  E16 FAILED: logging-enabled throughput %.1f inst/s below %.1f \
       (%.0f%% of logging-off %.1f)\n"
      (ips Log) floor_ips ((1. -. tolerance) *. 100.) (ips Off);
    exit 1
  end;
  Printf.printf
    "  ratchet ok: log %.1f inst/s >= %.0f%% of off %.1f (trace: %.1f)\n"
    (ips Log) ((1. -. tolerance) *. 100.) (ips Off) (ips Trace)
