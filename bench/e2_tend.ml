(* E2 — The round bound t_end (equation 19) vs measured rounds-to-ε.

   One execution per n with a tiny ε; then for each larger ε we read
   off the first round whose measured max-pairwise Hausdorff distance
   dropped below that ε, and compare with the analytic t_end. Shape:
   the formula is an over-approximation (it uses the coarse Ω bound),
   measured convergence is faster, and both grow as ε shrinks —
   linearly in log(1/ε) with slope ≈ 1/ln(n/(n−1)). *)

module Q = Numeric.Q
module Executor = Chc.Executor
module Cc = Chc.Cc

let run () =
  let eps_list =
    [ Q.one; Q.of_ints 1 2; Q.of_ints 1 5; Q.of_ints 1 10 ]
  in
  let eps_min = Q.of_ints 1 10 in
  let ns = [9; 11] in
  let rows =
    List.concat_map
      (fun n ->
         let config = Chc.Config.make ~n ~f:2 ~d:2 ~eps:eps_min ~lo:Q.zero ~hi:Q.one in
         let (faulty, result) = E1_convergence.spread_run ~config in
         let metrics = E1_convergence.round_diameters ~faulty result in
         let dh_at t = E1_convergence.diameter_at metrics t in
         List.map
           (fun eps ->
              let cfg_eps = Chc.Config.make ~n ~f:2 ~d:2 ~eps ~lo:Q.zero ~hi:Q.one in
              let formula = Chc.Bounds.t_end cfg_eps in
              let measured =
                let target = Q.to_float eps in
                let rec find t =
                  if t > result.Cc.t_end then None
                  else
                    match dh_at t with
                    | Some d when d < target -> Some t
                    | _ -> find (t + 1)
                in
                find 0
              in
              [ string_of_int n; Q.to_string eps; string_of_int formula;
                (match measured with Some t -> string_of_int t | None -> ">t_end") ])
           eps_list)
      ns
  in
  Util.print_table
    ~title:"E2: analytic t_end (eq. 19) vs measured rounds-to-eps (d=2, f=2)"
    ~header:["n"; "eps"; "t_end formula"; "measured"]
    ~widths:[4; 8; 14; 10]
    rows
