(* E5 — Convex hull consensus vs the vector-consensus baseline.

   Same inputs, same crash plans, same schedules. Algorithm VC decides
   a point (zero volume, zero extra information); Algorithm CC decides
   a polytope that provably contains I_Z. The comparison quantifies
   the paper's motivation: what you gain (a whole certified region) and
   what it costs (polytope-bearing messages; the same number of
   messages and rounds). *)

module Q = Numeric.Q
module Executor = Chc.Executor
module VC = Chc.Vector_consensus
module Crash = Runtime.Crash
module Rng = Runtime.Rng

let run () =
  let runs = Util.sweep_size 10 in
  let rows =
    List.map
      (fun n ->
         let config =
           Chc.Config.make ~n ~f:1 ~d:2 ~eps:(Q.of_ints 1 10) ~lo:Q.zero ~hi:Q.one
         in
         let cc_msgs = ref 0 and vc_msgs = ref 0 in
         let cc_vol = ref 0.0 and vc_spread = ref 0.0 and cc_dh = ref 0.0 in
         let volumes = ref 0 in
         let cc_bytes = ref 0 and cc_payloads = ref 0 in
         let vc_bytes = ref 0 and vc_payloads = ref 0 in
         for k = 0 to runs - 1 do
           let seed = (k * 31013) + n in
           let spec = Executor.default_spec ~config ~seed () in
           let r = Executor.run spec in
           let vb =
             VC.execute_baseline ~config ~inputs:spec.Executor.inputs
               ~crash:spec.Executor.crash ~scheduler:spec.Executor.scheduler
               ~seed ()
           in
           cc_msgs := !cc_msgs + r.Executor.result.Chc.Cc.metrics.Runtime.Sim.sent;
           vc_msgs := !vc_msgs + vb.VC.metrics.Runtime.Sim.sent;
           (match r.Executor.min_output_volume with
            | Some v -> cc_vol := !cc_vol +. Q.to_float v; incr volumes
            | None -> ());
           (match r.Executor.agreement2 with
            | Some a -> cc_dh := Stdlib.max !cc_dh (sqrt (Q.to_float a))
            | None -> ());
           let pts =
             Array.to_list vb.VC.outputs |> List.filter_map Fun.id
           in
           List.iter
             (fun p ->
                List.iter
                  (fun q ->
                     vc_spread :=
                       Stdlib.max !vc_spread (Geometry.Vec.dist p q))
                  pts)
             pts;
           (* Wire-format payload accounting: CC round messages carry
              polytopes, VC messages carry points. CC's side comes
              from the observability layer's per-round metrics (same
              payload-per-history-entry accounting as before, now
              shared with `chc_sim --verbose`). *)
           List.iter
             (fun (rm : Obs.Report.round) ->
                cc_bytes := !cc_bytes + rm.Obs.Report.wire_bytes;
                cc_payloads := !cc_payloads + rm.Obs.Report.messages)
             (Executor.round_metrics ~faulty:r.Executor.faulty
                r.Executor.result);
           List.iter
             (fun p ->
                vc_bytes := !vc_bytes + Codec.Wire.vec_size p;
                incr vc_payloads)
             pts
         done;
         let fr = float_of_int runs in
         [ string_of_int n;
           string_of_int (Chc.Bounds.t_end
                            (Chc.Config.make ~n ~f:1 ~d:2 ~eps:(Q.of_ints 1 10)
                               ~lo:Q.zero ~hi:Q.one));
           Printf.sprintf "%.0f" (float_of_int !cc_msgs /. fr);
           Printf.sprintf "%.0f" (float_of_int !vc_msgs /. fr);
           (if !volumes = 0 then "0" else Util.f4 (!cc_vol /. float_of_int !volumes));
           "0 (point)";
           Util.f4 !cc_dh;
           Util.f4 !vc_spread;
           (if !cc_payloads = 0 then "-"
            else string_of_int (!cc_bytes / !cc_payloads));
           (if !vc_payloads = 0 then "-"
            else string_of_int (!vc_bytes / !vc_payloads)) ])
      [5; 7; 9]
  in
  Util.print_table
    ~title:
      (Printf.sprintf
         "E5: CC vs vector-consensus baseline (d=2, f=1, eps=0.1, %d runs each)"
         runs)
    ~header:["n"; "t_end"; "CC msgs"; "VC msgs"; "CC vol"; "VC vol";
             "CC max dH"; "VC max spread"; "CC B/msg"; "VC B/msg"]
    ~widths:[3; 6; 8; 8; 8; 9; 9; 13; 8; 8]
    rows;
  print_endline
    "  (same round structure and message count; CC pays in message size and";
  print_endline
    "   decides a positive-volume region, VC decides a single point)"
