(* E10 — Implementation performance (bechamel micro-benchmarks).

   Wall-clock cost of the geometric primitives and of full executions,
   plus two ablations that justify the fast paths:
   - the 2-d Minkowski linear edge-merge vs quadratic pairwise-sum;
   - the d=3 L-operator (weighted Minkowski average) under the pre-PR
     brute-force pipeline (all-subsets facet sweep + per-point LP
     pruning) vs the incremental beneath-beyond kernel, with and
     without the structural memo tables.

   All arithmetic is exact rationals, so these numbers characterize
   the exact-arithmetic cost profile, not float geometry. Results are
   also emitted to BENCH_E10.json (ns/op per benchmark) so speedups
   can be tracked across revisions. *)

open Bechamel
open Toolkit

module Q = Numeric.Q
module Vec = Geometry.Vec
module Hull2d = Geometry.Hull2d
module Hullnd = Geometry.Hullnd
module Polytope = Geometry.Polytope
module Rng = Runtime.Rng

let mk_points rng m =
  List.init m (fun _ ->
      Vec.make [Q.of_ints (Rng.int rng 2001 - 1000) 997;
                Q.of_ints (Rng.int rng 2001 - 1000) 991])

let mk_points3 rng m =
  List.init m (fun _ ->
      Vec.make [Q.of_ints (Rng.int rng 2001 - 1000) 997;
                Q.of_ints (Rng.int rng 2001 - 1000) 991;
                Q.of_ints (Rng.int rng 2001 - 1000) 983])

(* Run [f] with the memo tables switched off, so the entry measures
   algorithmic cost rather than cache hits. *)
let nocache f () =
  Parallel.Memo.set_enabled false;
  Fun.protect ~finally:(fun () -> Parallel.Memo.set_enabled true) f

(* The d=3 L-operator exactly as computed before this PR: scale each
   polytope, fold binary Minkowski sums, and canonicalize each
   intermediate with the LP-pruning extreme-point filter. *)
let average3_lp verts_list =
  let w = Q.inv (Q.of_int (List.length verts_list)) in
  let scaled = List.map (List.map (Vec.scale w)) verts_list in
  match scaled with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun acc vs ->
         Hullnd.extreme_points_lp
           (List.concat_map (fun u -> List.map (Vec.add u) vs) acc))
      (Hullnd.extreme_points_lp first) rest

(* Same fold through the incremental beneath-beyond kernel. *)
let average3_incremental verts_list =
  let w = Q.inv (Q.of_int (List.length verts_list)) in
  let scaled = List.map (List.map (Vec.scale w)) verts_list in
  match scaled with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun acc vs ->
         Hullnd.extreme_points
           (List.concat_map (fun u -> List.map (Vec.add u) vs) acc))
      (Hullnd.extreme_points first) rest

let tests () =
  let rng = Rng.create 2014 in
  let pts100 = mk_points rng 100 in
  let polyA = Hull2d.hull (mk_points rng 40) in
  let polyB = Hull2d.hull (mk_points rng 40) in
  let pA = Polytope.of_points ~dim:2 (mk_points rng 30) in
  let pB = Polytope.of_points ~dim:2 (mk_points rng 30) in
  let config =
    Chc.Config.make ~n:5 ~f:1 ~d:2 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec = Chc.Executor.default_spec ~config ~seed:5 () in
  let config3 =
    Chc.Config.make ~n:6 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec3 = Chc.Executor.default_spec ~config:config3 ~seed:42 () in
  let config7 =
    Chc.Config.make ~n:7 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec7 = Chc.Executor.default_spec ~config:config7 ~seed:42 () in
  (* d=3 L-operator instance: three hulls of 8 points each, the shape
     round t of Algorithm CC averages. *)
  let polys3 =
    List.init 3 (fun _ -> Polytope.of_points ~dim:3 (mk_points3 rng 8))
  in
  let hulls3 = List.map Polytope.vertices polys3 in
  let pts3 = mk_points3 rng 12 in
  (* Warm the structural memo tables for the full-execution entries:
     bechamel's fast quota fits only a couple of n6-d3 runs, so without
     a warmup the estimate is dominated by the one cold run and swings
     ~5x between --fast and full mode — useless for the ratchet. The
     cold-cache cost profile is E13's job; here we track warm
     steady-state. *)
  ignore (Chc.Executor.run spec);
  ignore (Chc.Executor.run spec3);
  [ Test.make ~name:"hull2d/monotone-chain-100pts"
      (Staged.stage (fun () -> ignore (Hull2d.hull pts100)));
    Test.make ~name:"minkowski/edge-merge"
      (Staged.stage (fun () -> ignore (Hull2d.minkowski_sum polyA polyB)));
    Test.make ~name:"minkowski/pairwise-naive"
      (Staged.stage (fun () ->
           ignore
             (Hull2d.hull
                (List.concat_map (fun a -> List.map (Vec.add a) polyB) polyA))));
    Test.make ~name:"polytope/intersect-2d"
      (Staged.stage (fun () -> ignore (Polytope.intersect [pA; pB])));
    Test.make ~name:"polytope/hausdorff2-exact"
      (Staged.stage (fun () -> ignore (Polytope.hausdorff2 pA pB)));
    Test.make ~name:"lp/membership-30pts"
      (Staged.stage
         (let q = Vec.make [Q.of_ints 1 7; Q.of_ints 2 7] in
          fun () ->
            ignore (Geometry.Lp.in_convex_hull_uncached (Polytope.vertices pA) q)));
    Test.make ~name:"hullnd/facets-brute-3d"
      (Staged.stage
         (nocache (fun () -> ignore (Hullnd.enumerate_facets_brute ~dim:3 pts3))));
    Test.make ~name:"hullnd/facets-incremental-3d"
      (Staged.stage
         (nocache (fun () -> ignore (Hullnd.facets_incremental_3d pts3))));
    Test.make ~name:"l3/brute-baseline"
      (Staged.stage (nocache (fun () -> ignore (average3_lp hulls3))));
    Test.make ~name:"l3/incremental"
      (Staged.stage (nocache (fun () -> ignore (average3_incremental hulls3))));
    Test.make ~name:"l3/incremental-cached"
      (Staged.stage (fun () -> ignore (Polytope.average polys3)));
    Test.make ~name:"cc/full-execution-n5-d2"
      (Staged.stage (fun () -> ignore (Chc.Executor.run spec)));
    Test.make ~name:"cc/full-execution-n6-d3"
      (Staged.stage (fun () -> ignore (Chc.Executor.run spec3)));
    (* The n7-d3 fallback wall, measured COLD (memo tables flushed
       every run) under the staged kernel: this is the entry the
       staged second stage exists for, and the ratchet genuinely
       enforces the win — a fallback-bound run (~1.3 s filtered)
       trips the 2.5x tolerance against the committed ~quarter-second
       baseline. *)
    Test.make ~name:"cc/full-execution-n7-d3"
      (Staged.stage (fun () ->
           Parallel.Memo.clear_all ();
           Numeric.Kernel.with_mode Numeric.Kernel.Staged (fun () ->
               ignore (Chc.Executor.run spec7)))) ]

(* One profiled n=6/f=1/d=3 execution: the span profiler attributes the
   end-to-end wall-clock to protocol phases (round 0 vs rounds) and to
   the geometry/memo/wire layers underneath, complementing the
   per-primitive microbenchmarks above. *)
let profile_phases () =
  let config3 =
    Chc.Config.make ~n:6 ~f:1 ~d:3 ~eps:(Q.of_ints 1 2) ~lo:Q.zero ~hi:Q.one
  in
  let spec3 = Chc.Executor.default_spec ~config:config3 ~seed:42 () in
  Obs.Prof.reset ();
  Obs.Prof.set_enabled true;
  ignore (Chc.Executor.run spec3);
  Obs.Prof.set_enabled false;
  let summary = Obs.Prof.summary () in
  Obs.Prof.reset ();
  summary

let json_escape s =
  String.concat ""
    (List.map
       (fun c ->
          match c with
          | '"' -> "\\\"" | '\\' -> "\\\\"
          | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let emit_json rows phases =
  match
    Obs.Sink.write_file ~path:"BENCH_E10.json" (fun oc ->
        output_string oc
          "{\n  \"experiment\": \"e10\",\n  \"unit\": \"ns/op\",\n  \"results\": [\n";
        let n = List.length rows in
        List.iteri
          (fun i (name, ns) ->
             Printf.fprintf oc "    {\"name\": \"%s\", \"ns_per_op\": %s}%s\n"
               (json_escape name)
               (if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns)
               (if i = n - 1 then "" else ","))
          rows;
        output_string oc "  ],\n  \"profile_phases\": [\n";
        let m = List.length phases in
        List.iteri
          (fun i (name, (s : Obs.Prof.stat)) ->
             Printf.fprintf oc
               "    {\"name\": \"%s\", \"calls\": %d, \"total_ns\": %.0f}%s\n"
               (json_escape name) s.Obs.Prof.calls s.Obs.Prof.total_ns
               (if i = m - 1 then "" else ","))
          phases;
        output_string oc "  ]\n}\n")
  with
  | Ok () ->
    Printf.printf "  wrote BENCH_E10.json (%d entries, %d phases)\n"
      (List.length rows) (List.length phases)
  | Error msg -> Printf.printf "  BENCH_E10.json NOT written: %s\n" msg

(* The perf ratchet. When main passes [--baseline BENCH_E10.json]
   (the committed numbers), every end-to-end execution and hullnd
   kernel entry of this run is compared against it and the whole bench
   run fails on a regression beyond [Util.bench_tolerance] (default
   2.5x; CHC_BENCH_TOLERANCE overrides it for noisy runners). Only the
   heavyweight entries are ratcheted — the sub-microsecond ones are
   too noisy at the fast quota to gate a build on.

   The committed file is this module's own [emit_json] output, one
   entry per line, so a line-oriented scan suffices; Codec.Json is
   int-only by design and ns_per_op is fractional. *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ratcheted name =
  contains ~sub:"full-execution" name || contains ~sub:"hullnd/" name

let parse_baseline path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      let entries = ref [] in
      (try
         while true do
           let line = input_line ic in
           match
             Scanf.sscanf line " {\"name\": %S, \"ns_per_op\": %f"
               (fun name ns -> (name, ns))
           with
           | entry -> entries := entry :: !entries
           | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> ()
         done
       with End_of_file -> ());
      List.rev !entries)

let check_baseline measured =
  match Util.baseline with
  | None -> ()
  | Some path ->
    let committed = parse_baseline path in
    let tol = Util.bench_tolerance in
    let failures = ref [] in
    let rows =
      List.filter_map
        (fun (name, committed_ns) ->
           if not (ratcheted name && committed_ns > 0.0) then None
           else
             match List.assoc_opt name measured with
             | Some fresh when not (Float.is_nan fresh) ->
               let ratio = fresh /. committed_ns in
               if ratio > tol then failures := (name, ratio) :: !failures;
               Some
                 [ name;
                   Printf.sprintf "%.2f ms" (committed_ns /. 1e6);
                   Printf.sprintf "%.2f ms" (fresh /. 1e6);
                   Printf.sprintf "%.2fx%s" ratio
                     (if ratio > tol then "  REGRESSION" else "") ]
             | _ -> Some [name; Util.f3 committed_ns; "not measured"; "-"])
        committed
    in
    Util.print_table
      ~title:
        (Printf.sprintf "E10: perf ratchet vs %s (tolerance %.2fx)" path tol)
      ~header:["entry"; "committed"; "this run"; "ratio"]
      ~widths:[36; 10; 12; 18]
      rows;
    (match !failures with
     | [] -> ()
     | fs ->
       failwith
         (Printf.sprintf
            "e10 ratchet: %d entr%s regressed past %.2fx of the committed \
             baseline (%s) — investigate, or re-bless BENCH_E10.json if the \
             slowdown is intended"
            (List.length fs)
            (if List.length fs = 1 then "y" else "ies")
            tol path))

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if Util.fast then 0.25 else 1.0))
      ~kde:None ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"chc" ~fmt:"%s %s" (tests ()))
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let measured = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
       let ns =
         match Analyze.OLS.estimates ols_result with
         | Some (est :: _) -> est
         | _ -> nan
       in
       measured := (name, ns) :: !measured)
    results;
  let measured = List.sort compare !measured in
  let rows =
    List.map
      (fun (name, ns) ->
         let cell =
           if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [name; cell])
      measured
  in
  Util.print_table
    ~title:"E10: exact-arithmetic cost profile (bechamel, monotonic clock)"
    ~header:["operation"; "time/run"]
    ~widths:[36; 10]
    rows;
  let phases = profile_phases () in
  Util.print_table
    ~title:"E10: profiled phase breakdown, one n=6 f=1 d=3 execution (spans)"
    ~header:["span"; "calls"; "total ms"]
    ~widths:[24; 7; 9]
    (List.map
       (fun (name, (s : Obs.Prof.stat)) ->
          [ name; string_of_int s.Obs.Prof.calls;
            Printf.sprintf "%.2f" (s.Obs.Prof.total_ns /. 1e6) ])
       phases);
  emit_json measured phases;
  (match
     ( List.assoc_opt "chc l3/brute-baseline" measured,
       List.assoc_opt "chc l3/incremental" measured )
   with
   | Some b, Some i when i > 0.0 && not (Float.is_nan b) ->
     Printf.printf "  d=3 L-operator speedup (brute/incremental): %.1fx\n" (b /. i)
   | _ -> ());
  check_baseline measured
