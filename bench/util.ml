(* Shared helpers for the experiment harness: fixed-width table
   printing and spec construction. Every experiment prints a paper-
   style table; EXPERIMENTS.md records one canonical run of each. *)

module Q = Numeric.Q

let hrule widths =
  String.concat "-+-" (List.map (fun w -> String.make w '-') widths)

let row widths cells =
  String.concat " | "
    (List.map2
       (fun w c ->
          if String.length c >= w then c
          else c ^ String.make (w - String.length c) ' ')
       widths cells)

let print_table ~title ~header ~widths rows =
  Printf.printf "\n== %s ==\n" title;
  print_endline (row widths header);
  print_endline (hrule widths);
  List.iter (fun r -> print_endline (row widths r)) rows;
  print_newline ()

let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x
let f6 x = Printf.sprintf "%.6f" x
let qf x = f6 (Q.to_float x)

let pct num den =
  if den = 0 then "n/a" else Printf.sprintf "%d/%d" num den

(* Fast mode trims seed sweeps so the whole harness stays snappy;
   the full mode is what EXPERIMENTS.md records. *)
let fast = Array.exists (fun a -> a = "--fast") Sys.argv

let sweep_size full = if fast then Stdlib.max 3 (full / 5) else full

(* --baseline FILE: committed BENCH_E10.json to ratchet against (see
   E10_perf.check_baseline). Consumed here so main's experiment
   selection can skip both tokens. *)
let baseline =
  let rec find = function
    | "--baseline" :: path :: _ -> Some path
    | _ :: rest -> find rest
    | [] -> None
  in
  find (Array.to_list Sys.argv)

(* Regression tolerance for the ratchet: fresh/committed above this
   factor fails the build. Overridable for noisy runners. *)
let bench_tolerance =
  match Sys.getenv_opt "CHC_BENCH_TOLERANCE" with
  | Some s ->
    (match float_of_string_opt s with
     | Some t when t > 1.0 -> t
     | _ ->
       Printf.eprintf "bench: ignoring CHC_BENCH_TOLERANCE=%S (need > 1)\n%!" s;
       2.5
     )
  | None -> 2.5
